"""Process-backed shard executor: one long-lived child per shard.

``ServiceConfig.executor = "process"`` swaps each shard's in-thread
decode for a child process that holds the shard's warm
:class:`~repro.service.worker.SessionPool` resident across frames.
The division of labour keeps every piece of mutable ring state in
exactly one process:

* the **parent** keeps the shard queue, all :class:`ChunkRing`
  bookkeeping (allocate / retire / reclaim), shedding, supervision and
  terminal accounting — exactly the thread executor's dispatcher loop,
  with the decode call replaced by a pipe round-trip;
* the **child** attaches the ring's shared-memory block by name
  (:class:`~repro.service.framing.RingView`) and decodes each frame
  zero-copy from the ``(start, n)`` region the parent sends, running
  the same :class:`SessionPool` code the thread executor runs — same
  seeds, same retry ladder, so decodes stay bit-identical.

The pipe protocol is **lock-step**: at most one command is in flight
per child, serialized by an IPC lock in the parent.  That makes kill
blame exact (a dead child was holding exactly the frame the parent
just sent), keeps terminal accounting trivially exact, and needs no
cross-process queue.

Supervision mirrors the batch engine's pool supervision
(:mod:`repro.core.engine`):

* a **deliberate kill** (chaos ``ChaosWorkerKill`` raised inside the
  child's decode) is announced by the child (``("died", …)``) before
  it exits; the parent fails the frame immediately — the same verdict
  the thread executor delivers when the kill tears down its worker
  thread — and respawns the child;
* a **silent crash** (pipe EOF with no announcement: segfault,
  ``kill -9``) or a **hang** (no verdict within
  ``ServiceConfig.child_timeout_s`` → the parent terminates the
  child) respawns the child and resubmits the frame once — sessions
  rebuild from the same stream seeds, so the retried decode is
  bit-identical — with a second strike failing the frame;
* either way the parent retires the frame's ring region itself, so a
  dying child can never leak a ring slot or pin ``/dev/shm``.

Metrics produced in the child (retries, session respawns/evictions,
stage latencies) ride back on each verdict as a registry snapshot
*delta* (:func:`repro.service.metrics.diff_snapshot`) and are merged
into the parent's registry, so one exposition covers both executors.

Children are forked in :meth:`ProcessShardWorker.prestart`, before the
service starts any dispatcher thread: forking a single-threaded parent
cannot inherit a lock mid-acquire, and the child's surviving stack
keeps the parent's object graph (other shards' rings included) pinned
so no inherited ``ChunkRing.__del__`` can ever fire in the child and
unlink a block the parent still owns.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
from typing import Callable, Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..types import EpochResult
from .config import ServiceConfig
from .framing import ChunkFrame, RingView
from .metrics import MetricsRegistry, RegistrySnapshotter
from .worker import (STATUS_FAILED, ChunkResult, SessionPool,
                     ShardWorker)

#: Strikes (send + resubmission) before a frame is failed on a child
#: that keeps dying or hanging — mirrors the batch engine's two-strike
#: crash quarantine.
_CRASH_STRIKES = 2

#: How long the parent waits for a child to acknowledge ``("stop",)``
#: before escalating to ``terminate()``.
_REAP_TIMEOUT_S = 5.0

#: Verdict tuple shipped child → parent: (status, result, attempts,
#: error, decode_s).
_Verdict = Tuple[str, Optional[EpochResult], int, Optional[str], float]


class ProcessShardWorker(ShardWorker):
    """One shard = the parent dispatcher thread + a child process.

    Drop-in for :class:`ShardWorker`: queueing, shedding, ring
    ownership, ``join_idle`` and result delivery are all inherited —
    only ``_decode_frame`` changes, into a supervised pipe round-trip.
    """

    def __init__(self, shard_id: int, config: ServiceConfig,
                 registry: MetricsRegistry,
                 on_result: Callable[[ChunkResult], None]):
        super().__init__(shard_id, config, registry, on_result)
        if self.ring.shm_name is None:
            raise ConfigurationError(
                "executor='process' needs shared-memory rings "
                "(use_shared_memory must not be False and /dev/shm "
                "must have room)")
        self._registry = registry
        # Lock-step IPC: one command in flight per child, ever.
        self._ipc = threading.Lock()
        self._ctx = (mp.get_context("fork")
                     if "fork" in mp.get_all_start_methods()
                     else mp.get_context())
        self._child: Optional[mp.process.BaseProcess] = None
        self._conn = None

    # -- child lifecycle ---------------------------------------------------

    def prestart(self) -> None:
        with self._ipc:
            self._spawn_child_locked()

    def _spawn_child_locked(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_child_main,
            args=(self.shard_id, self.config, self.ring.shm_name,
                  child_conn),
            name=f"lf-shard-proc-{self.shard_id}", daemon=True)
        proc.start()
        child_conn.close()
        self._child = proc
        self._conn = parent_conn

    def _reap_child_locked(self, graceful: bool) -> None:
        conn, proc = self._conn, self._child
        self._conn, self._child = None, None
        if conn is not None:
            if graceful:
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        if proc is not None:
            proc.join(timeout=_REAP_TIMEOUT_S if graceful else 0.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=_REAP_TIMEOUT_S)
                if proc.is_alive():  # pragma: no cover - last resort
                    try:
                        os.kill(proc.pid, signal.SIGKILL)
                    except (OSError, TypeError):
                        pass
                    proc.join(timeout=_REAP_TIMEOUT_S)
        if conn is not None:
            conn.close()

    def _respawn_child_locked(self) -> None:
        self._reap_child_locked(graceful=False)
        self._m_respawns.inc(1.0, shard=self._shard_label,
                             kind="worker_process")
        self._spawn_child_locked()

    def _shutdown_executor(self) -> None:
        with self._ipc:
            self._reap_child_locked(graceful=True)

    # -- supervised decode -------------------------------------------------

    def _decode_frame(self, frame: ChunkFrame) -> ChunkResult:
        try:
            status, result, attempts, error, decode_s = \
                self._ipc_decode(frame)
        finally:
            # The parent owns retirement: whatever happened to the
            # child, the frame's ring region is reclaimed here and the
            # slot cannot leak.
            if frame.frame_id >= 0:
                self.ring.retire(frame.frame_id)
        return self._complete(frame, status, result, attempts, error,
                              decode_s)

    def _ipc_decode(self, frame: ChunkFrame) -> _Verdict:
        region = ((-1, 0) if frame.frame_id < 0
                  else self.ring.region(frame.frame_id))
        with self._ipc:
            last_error = "worker process unavailable"
            for strike in range(1, _CRASH_STRIKES + 1):
                if self._conn is None or self._child is None or \
                        not self._child.is_alive():
                    self._respawn_child_locked()
                conn = self._conn
                try:
                    conn.send(("frame", frame, region[0], region[1]))
                except (BrokenPipeError, OSError):
                    last_error = "worker process pipe broke on send"
                    self._respawn_child_locked()
                    continue
                kind, payload = self._await_reply_locked(conn)
                if kind == "result":
                    status, result, attempts, error, decode_s, delta \
                        = payload
                    if delta:
                        self._registry.apply_delta(delta)
                    return status, result, attempts, error, decode_s
                if kind == "died":
                    # Deliberate in-decode kill (chaos): the child
                    # announced it.  Fail the frame immediately — the
                    # thread executor's verdict for the same fault —
                    # and bring up a fresh child for the next frame.
                    self._respawn_child_locked()
                    return (STATUS_FAILED, None, 1,
                            f"worker died: {payload}", 0.0)
                if kind == "hang":
                    last_error = (
                        f"worker process hung > "
                        f"{self.config.child_timeout_s}s (strike "
                        f"{strike}/{_CRASH_STRIKES})")
                else:  # silent crash: EOF with no announcement
                    last_error = (
                        f"worker process died (strike "
                        f"{strike}/{_CRASH_STRIKES})")
                self._respawn_child_locked()
            return STATUS_FAILED, None, _CRASH_STRIKES, last_error, 0.0

    def _await_reply_locked(self, conn) -> Tuple[str, object]:
        """Wait for the child's reply to one ``("frame", …)`` command.

        Returns ``("result", verdict)``, ``("died", reason)``,
        ``("hang", None)`` on ``child_timeout_s`` expiry, or
        ``("eof", None)`` when the child vanished silently.
        """
        timeout = self.config.child_timeout_s
        while True:
            try:
                if not conn.poll(0.2 if timeout is None
                                 else min(0.2, timeout)):
                    if timeout is not None:
                        timeout -= 0.2
                        if timeout <= 0:
                            return "hang", None
                    continue
                msg = conn.recv()
            except (EOFError, ConnectionResetError, OSError):
                return "eof", None
            if msg[0] in ("result", "died"):
                return msg[0], msg[1] if msg[0] == "died" else msg[1:]
            # Unsolicited message (stale cache_stats reply from a
            # previous incarnation) — drop and keep waiting.

    # -- pass-through queries ----------------------------------------------

    def cache_stats(self) -> Dict[str, int]:
        """Warm-cache counters fetched from the child over the pipe
        (empty when the child is between incarnations)."""
        with self._ipc:
            conn = self._conn
            if conn is None or self._child is None or \
                    not self._child.is_alive():
                return {}
            try:
                conn.send(("cache_stats",))
                while conn.poll(_REAP_TIMEOUT_S):
                    msg = conn.recv()
                    if msg[0] == "cache_stats":
                        return msg[1]
                    if msg[0] == "died":  # pragma: no cover - racing
                        return {}
            except (EOFError, ConnectionResetError, BrokenPipeError,
                    OSError):
                pass
            return {}


def _child_main(shard_id: int, config: ServiceConfig,
                ring_name: str, conn) -> None:
    """Child process loop: attach the ring, decode frames lock-step.

    Runs the exact :class:`SessionPool` the thread executor runs,
    against the child's own registry; every verdict ships the
    registry's delta since the last one so the parent's exposition
    stays live.  Exits through ``os._exit`` so no inherited finalizer
    (another shard's ring, the parent's metrics state) ever runs here.
    """
    # The parent handles SIGINT/SIGTERM and shuts children down over
    # the pipe; a tty Ctrl-C must not snipe the child mid-decode.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - exotic hosts
        pass
    registry = MetricsRegistry()
    snapshotter = RegistrySnapshotter(registry)
    pool = SessionPool(shard_id, config, registry)
    ring = RingView(ring_name)
    exit_code = 0
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, ConnectionResetError, OSError):
                break  # parent is gone; nothing to report to
            kind = msg[0]
            if kind == "stop":
                break
            if kind == "cache_stats":
                try:
                    conn.send(("cache_stats", pool.cache_stats()))
                except (BrokenPipeError, OSError):
                    break
                continue
            if kind != "frame":  # pragma: no cover - unknown command
                continue
            _, frame, start, n = msg
            samples = (frame.inline if frame.frame_id < 0
                       else ring.view(start, n))
            try:
                verdict = pool.decode(frame, samples)
            except BaseException as exc:  # noqa: BLE001 - chaos kill
                # Deliberate kill: announce, then die hard so the
                # parent's supervision (not a half-alive loop) owns
                # what happens next.
                try:
                    conn.send(
                        ("died", f"{type(exc).__name__}: {exc}"))
                except (BrokenPipeError, OSError):
                    pass
                exit_code = 1
                break
            try:
                conn.send(("result",) + verdict +
                          (snapshotter.delta(),))
            except (BrokenPipeError, OSError):
                break
    finally:
        try:
            ring.close()
            conn.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass
        os._exit(exit_code)
