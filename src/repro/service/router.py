"""Deterministic shard routing for (reader, antenna) stream keys.

Sharding exists so *warm state stays shard-local*: every chunk of one
physical stream must land on the same worker, whose per-stream
:class:`~repro.core.session_decoder.SessionDecoder` carries the fold /
k-means / lattice caches across chunks.  The route is a pure function
of the stream key and the shard count — never of arrival order, Python
process, or hash randomization — so a replayed trace always exercises
the same workers and a restarted service re-warms the same shards.

The hash is FNV-1a over the key bytes: stable across processes and
platforms (unlike builtin ``hash``), cheap, and well-mixed for the
small integer keys readers use.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def _fnv1a(data: bytes) -> int:
    value = _FNV_OFFSET
    for byte in data:
        value = ((value ^ byte) * _FNV_PRIME) & _MASK
    return value


def stream_key_bytes(reader_id: int, antenna: int) -> bytes:
    """Canonical byte encoding of a stream key."""
    return b"%d/%d" % (int(reader_id), int(antenna))


def shard_index(reader_id: int, antenna: int, n_shards: int) -> int:
    """Which shard owns the (reader, antenna) stream.  Deterministic."""
    if n_shards < 1:
        raise ConfigurationError(
            f"n_shards must be >= 1, got {n_shards}")
    return _fnv1a(stream_key_bytes(reader_id, antenna)) % n_shards


def stream_seed(root_seed: int, reader_id: int, antenna: int) -> int:
    """Deterministic decoder seed for one stream's SessionDecoder.

    Derived through :class:`numpy.random.SeedSequence` so per-stream
    RNGs are statistically independent, yet any offline re-decode (the
    golden bit-identity tests run ``decode_chunked`` with a session
    seeded the same way) reproduces the service's output exactly.
    """
    seq = np.random.SeedSequence(
        [int(root_seed) & _MASK, int(reader_id), int(antenna)])
    return int(seq.generate_state(1, dtype=np.uint64)[0])
