"""The asyncio streaming decode service over the stage-graph decoder.

:class:`DecodeService` is the long-running, many-reader front end the
paper's fully-asymmetric design implies: tags transmit whenever they
like, so the reader side must *absorb* continuously arriving IQ and
decode everything, indefinitely, with bounded memory.  The dataflow::

    async submit(reader, antenna, chunk)
        │  frame + copy into the shard's shm ChunkRing
        ▼
    shard router (FNV-1a over (reader, antenna) — warm state stays
        │                   shard-local)
        ▼
    bounded shard queue ── overflow: shed oldest / block producer
        │
        ▼
    ShardWorker thread → per-stream SessionDecoder (warm caches,
        │                 retries, cold respawn, LRU eviction)
        ▼
    ChunkResult → result handlers + Prometheus-style metrics

Everything observable about the decode — per-stage latency histograms
(via the :class:`~repro.core.stages.context.StageObserver` seam), warm
cache hit/miss counters, fidelity escalations, stream faults, shed and
retry counters, per-shard throughput — is exported live through one
:class:`~repro.service.metrics.MetricsRegistry`
(:meth:`DecodeService.render_metrics`).

Decode output is **bit-identical to the offline path**: chunks of one
stream decode in submission order through a
:class:`~repro.core.session_decoder.SessionDecoder` seeded by
``(seed, reader, antenna)``, exactly how
:func:`repro.reader.batch.decode_chunked` runs a sessioned decode, and
:func:`merge_stream_results` reassembles per-chunk results with the
same merge ``decode_chunked`` uses (pinned by the golden-digest
service test).
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import RingFullError, ServiceError
from ..reader.batch import merge_chunk_results
from ..types import EpochResult, IQTrace
from .config import BLOCK, PROCESS, ServiceConfig
from .framing import ChunkFrame
from .metrics import MetricsRegistry
from .router import shard_index
from .worker import (STATUS_DEGRADED, STATUS_FAILED, STATUS_OK,
                     STATUS_SHED, ChunkResult, ShardWorker)


def _worker_class(config: ServiceConfig):
    """The shard-worker class for ``config.executor`` (imported lazily
    so the thread executor never touches multiprocessing)."""
    if config.executor == PROCESS:
        from .process_worker import ProcessShardWorker
        return ProcessShardWorker
    return ShardWorker


@dataclass
class ServiceStats:
    """One coherent snapshot of the service's counters."""

    submitted: int = 0
    completed: int = 0
    decoded: int = 0
    failed: int = 0
    shed: int = 0
    samples_decoded: int = 0
    inline_fallbacks: int = 0
    queue_depths: Dict[int, int] = field(default_factory=dict)

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.completed if self.completed else 0.0


class DecodeService:
    """Sharded async ingest over SessionDecoder worker shards.

    Use as an async context manager::

        async with DecodeService(config) as service:
            await service.submit(reader_id=0, antenna=0, trace=chunk,
                                 sample_offset=0.0)
            await service.drain()
            print(service.render_metrics())

    Result handlers (:meth:`add_result_handler`) fire exactly once per
    submitted chunk, on a worker thread — keep them cheap and
    thread-safe; anything heavy belongs behind your own queue.
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.metrics = MetricsRegistry()
        worker_cls = _worker_class(self.config)
        self._workers: List[ShardWorker] = [
            worker_cls(i, self.config, self.metrics, self._on_result)
            for i in range(self.config.n_shards)]
        self._handlers: List[Callable[[ChunkResult], None]] = []
        self._seq: Dict[Tuple[int, int], int] = {}
        self._started = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._completion = asyncio.Event()
        self._submitted = 0
        self._completed = 0
        self._by_status = {STATUS_OK: 0, STATUS_DEGRADED: 0,
                           STATUS_FAILED: 0, STATUS_SHED: 0}
        self._samples_decoded = 0
        self._inline_fallbacks = 0
        self._stats_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "DecodeService":
        if self._started:
            return self
        self._loop = asyncio.get_running_loop()
        # Executor prestart (the process executor forks its children
        # here) runs before ANY worker thread exists: forking a
        # single-threaded parent cannot inherit a lock mid-acquire.
        for worker in self._workers:
            worker.prestart()
        for worker in self._workers:
            worker.start()
        self._started = True
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop the workers (draining queued work first by default)."""
        if not self._started:
            return
        if drain:
            await self.drain()
        loop = asyncio.get_running_loop()
        for worker in self._workers:
            await loop.run_in_executor(None, worker.stop, drain)
        self._started = False

    async def __aenter__(self) -> "DecodeService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop(drain=exc_type is None)

    # -- ingest ------------------------------------------------------------

    async def submit(self, reader_id: int, antenna: int,
                     trace: IQTrace, sample_offset: float = 0.0,
                     meta: Optional[dict] = None) -> ChunkFrame:
        """Accept one IQ chunk for decoding; returns its frame.

        Chunks of one (reader, antenna) stream must be submitted in
        capture order — the warm session state is causal.  Under the
        ``block`` overflow policy this call awaits queue room (true
        backpressure); under ``shed_oldest`` it returns immediately
        and overload is absorbed by dropping the oldest queued frame.
        """
        if not self._started:
            raise ServiceError("service not started")
        worker = self._workers[
            shard_index(reader_id, antenna, self.config.n_shards)]
        worker.ensure_alive()
        if self.config.overflow == BLOCK:
            while not worker.has_room():
                # Completions set the event from worker threads; the
                # short timeout only covers the clear/complete race.
                self._completion.clear()
                if worker.has_room():
                    break
                try:
                    await asyncio.wait_for(self._completion.wait(),
                                           timeout=0.1)
                except asyncio.TimeoutError:
                    pass
        key = (int(reader_id), int(antenna))
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        frame = ChunkFrame(
            reader_id=key[0], antenna=key[1], seq=seq,
            n_samples=len(trace),
            sample_rate_hz=trace.sample_rate_hz,
            start_time_s=trace.start_time_s,
            sample_offset=float(sample_offset),
            submitted_at=time.perf_counter(),
            meta=dict(meta or {}))
        try:
            frame.frame_id = worker.ring.write(trace.samples)
        except RingFullError:
            # Live frames hold the ring; carry this chunk inline so
            # ingest never blocks on the transport (the bounded queue,
            # not the ring, is the backpressure surface).
            frame.inline = np.array(trace.samples, dtype=np.complex128)
            with self._stats_lock:
                self._inline_fallbacks += 1
        with self._stats_lock:
            self._submitted += 1
        worker.enqueue(frame)
        return frame

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until every accepted chunk reached a terminal state."""
        loop = asyncio.get_running_loop()
        done = await asyncio.gather(*[
            loop.run_in_executor(None, w.join_idle, timeout)
            for w in self._workers])
        return all(done)

    # -- results -----------------------------------------------------------

    def add_result_handler(
            self, handler: Callable[[ChunkResult], None]) -> None:
        """Register a per-chunk completion callback (worker thread!)."""
        self._handlers.append(handler)

    def _on_result(self, outcome: ChunkResult) -> None:
        with self._stats_lock:
            self._completed += 1
            self._by_status[outcome.status] = \
                self._by_status.get(outcome.status, 0) + 1
            if outcome.result is not None:
                self._samples_decoded += outcome.frame.n_samples
        for handler in self._handlers:
            try:
                handler(outcome)
            except Exception:  # noqa: BLE001 — a broken handler must
                pass           # not take the worker loop down
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._completion.set)
            except RuntimeError:  # loop shut down mid-flight
                pass

    # -- observability -----------------------------------------------------

    def snapshot(self) -> ServiceStats:
        with self._stats_lock:
            return ServiceStats(
                submitted=self._submitted,
                completed=self._completed,
                decoded=(self._by_status[STATUS_OK]
                         + self._by_status[STATUS_DEGRADED]),
                failed=self._by_status[STATUS_FAILED],
                shed=self._by_status[STATUS_SHED],
                samples_decoded=self._samples_decoded,
                inline_fallbacks=self._inline_fallbacks,
                queue_depths={w.shard_id: w.queue_depth()
                              for w in self._workers})

    def render_metrics(self) -> str:
        """The live registry in Prometheus text exposition format."""
        return self.metrics.render()

    def cache_stats(self) -> Dict[str, int]:
        """Warm-cache counters summed across every shard's sessions."""
        totals: Dict[str, int] = {}
        for worker in self._workers:
            for key, value in worker.cache_stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals


def merge_stream_results(outcomes: Iterable[ChunkResult],
                         duration_s: float) -> EpochResult:
    """Reassemble one stream's chunk results into a capture-level
    :class:`~repro.types.EpochResult`.

    Exactly the merge :func:`repro.reader.batch.decode_chunked`
    applies — chunk-local stream offsets shifted by each frame's
    ``sample_offset`` into global coordinates, counters summed,
    boundary-duplicate streams collapsed — so a service decode of a
    chunked capture is comparable (bit-identically) with the offline
    result.  Shed and failed chunks contribute nothing; filter or
    assert on their absence first when exactness matters.
    """
    pairs = [(o.frame.sample_offset, o.result)
             for o in sorted(outcomes, key=lambda o: o.frame.seq)
             if o.result is not None]
    return merge_chunk_results(pairs, duration_s)
