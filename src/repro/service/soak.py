"""Soak-traffic generation and replay for the streaming service.

Everything the soak benchmark (``benchmarks/run_soak.py``) and the
quickstart CLI (``python -m repro.service``) need to put the service
under sustained multi-reader load:

* :func:`build_traffic` pre-renders a pool of epoch captures per
  reader — with **tag churn**: every ``churn_every`` pool epochs the
  reader's tag population is rebuilt (new ids, new channel
  coefficients), so the replay continuously retires warm trackers and
  warms new ones, exactly the many-sensor regime the mmBack-style
  deployments hit.  Rendering happens once, up front: the soak then
  stresses the *decoder*, not the simulator.
* :func:`run_soak` replays that traffic through a
  :class:`~repro.service.service.DecodeService` in two phases:

  1. **throughput** — closed-loop (``overflow="block"``): the
     producer is backpressured by the bounded queues, nothing sheds,
     and the sustained decode rate is the service's real capacity;
  2. **overload** — open-loop (``overflow="shed_oldest"``) at
     ``overload_factor`` × the measured capacity: the service must
     degrade gracefully — bounded queue depth, oldest-chunk shedding
     with exact accounting, no growth and no crash.

A third, opt-in phase family puts the service under *infrastructure*
fault injection: ``run_soak(..., chaos_cocktails=...)`` replays the
same traffic once per named :class:`~repro.service.chaos.ChaosConfig`
cocktail while a :class:`~repro.service.chaos.ChaosInjector` stalls,
crashes, kills and corrupts the decode path from the inside and skews
chunk arrival clocks at submit time.  Each chaos phase must end with
the same exact accounting as the overload phase — and with zero
*unexpected* thread exceptions (deliberate worker kills are expected;
anything else escaping a worker thread fails the gate).

The resulting :class:`SoakReport` serializes to the
``BENCH_service.json`` schema that ``benchmarks/check_regression.py``
gates in CI.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.pipeline import LFDecoderConfig
from ..errors import ConfigurationError
from ..reader.batch import chunk_trace
from ..types import IQTrace, SimulationProfile
from .chaos import (ChaosConfig, ChaosInjector, capture_thread_exceptions,
                    chaos_service_config)
from .config import (BLOCK, PROCESS, SHED_OLDEST, THREAD, ServiceConfig,
                     _default_executor)
from .service import DecodeService
from .worker import ChunkResult


@dataclass
class SoakConfig:
    """Shape of the synthetic many-reader workload."""

    n_readers: int = 2
    tags_per_reader: int = 8
    #: Epoch duration in seconds (fast profile: 0.01 s = 25k samples).
    epoch_s: float = 0.01
    #: Chunks each epoch is framed into (ring-buffer granularity).
    chunks_per_epoch: int = 2
    #: Distinct pre-rendered epochs per reader, replayed cyclically.
    pool_epochs: int = 6
    #: Rebuild the tag population every this many pool epochs (tag
    #: churn; 0 disables churn).
    churn_every: int = 3
    #: Wall-clock seconds per phase.
    duration_s: float = 20.0
    #: Offered-load multiple of measured capacity in the overload
    #: phase.
    overload_factor: float = 2.0
    seed: int = 0
    n_shards: int = 2
    #: Shard executor (``"thread"`` or ``"process"``); default honours
    #: ``REPRO_SERVICE_EXECUTOR`` like :class:`ServiceConfig` does.
    executor: str = field(default_factory=_default_executor)
    queue_depth: int = 8
    ring_samples: int = 1 << 18
    #: Skip the overload phase (quickstart mode).
    overload: bool = True
    #: Wall-clock seconds per chaos cocktail (chaos phases replay the
    #: same traffic once per cocktail, so they get their own, shorter
    #: budget).
    chaos_duration_s: float = 5.0

    def __post_init__(self) -> None:
        if self.n_readers < 1:
            raise ConfigurationError("need at least one reader")
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if self.overload_factor <= 1.0:
            raise ConfigurationError(
                "overload_factor must exceed 1.0")
        if self.chunks_per_epoch < 1:
            raise ConfigurationError(
                "chunks_per_epoch must be >= 1")


@dataclass
class PhaseReport:
    """Measured outcome of one replay phase."""

    wall_s: float = 0.0
    submitted: int = 0
    decoded: int = 0
    failed: int = 0
    shed: int = 0
    samples_offered: int = 0
    samples_decoded: int = 0
    sustained_samples_per_second: float = 0.0
    offered_samples_per_second: float = 0.0
    p50_chunk_latency_s: float = 0.0
    p99_chunk_latency_s: float = 0.0
    max_queue_depth: int = 0
    shed_fraction: float = 0.0
    #: submitted == decoded + failed + shed after drain — the
    #: zero-lost-records invariant the gate asserts.
    accounting_exact: bool = False
    cache_stats: Dict[str, int] = field(default_factory=dict)
    #: Faults the chaos injector actually fired (chaos phases only).
    injected: Dict[str, int] = field(default_factory=dict)
    #: Worker-thread escapes that were *not* deliberate kills — must
    #: be zero (chaos phases only; witnessed via threading.excepthook).
    unexpected_thread_exceptions: int = 0


@dataclass
class SoakReport:
    """Everything ``BENCH_service.json`` records for one soak run."""

    config: SoakConfig
    throughput: PhaseReport
    overload: Optional[PhaseReport] = None
    #: One open-loop phase per chaos cocktail, by cocktail name.
    chaos: Dict[str, PhaseReport] = field(default_factory=dict)
    #: Shard-count scaling curve: executor -> str(n_shards) -> closed
    #: loop phase (``--scaling-sweep`` mode).
    scaling: Dict[str, Dict[str, PhaseReport]] = \
        field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = {
            "config": asdict(self.config),
            "throughput": asdict(self.throughput),
        }
        if self.overload is not None:
            payload["overload"] = asdict(self.overload)
        if self.chaos:
            payload["chaos"] = {name: asdict(report)
                                for name, report in self.chaos.items()}
        if self.scaling:
            payload["scaling"] = {
                executor: {shards: asdict(report)
                           for shards, report in curve.items()}
                for executor, curve in self.scaling.items()}
        return payload


#: One reader's replayable traffic: epochs, each a list of
#: (chunk_trace, sample_offset) pairs.
ReaderTraffic = List[List[Tuple[IQTrace, float]]]


def _build_reader_pool(reader_id: int, cfg: SoakConfig,
                       profile: SimulationProfile) -> ReaderTraffic:
    from ..experiments.scenario import ScenarioSpec, ScenarioSynth
    epochs: ReaderTraffic = []
    for pool_index in range(cfg.pool_epochs):
        generation = (pool_index // cfg.churn_every
                      if cfg.churn_every else 0)
        # Churned generations carry fresh tag ids so a new population
        # reads as new streams, not as impossible drift of old ones.
        # The population generator doubles as the simulator's noise
        # source (spawn_sim_rng=False) — the pool's pinned-baseline
        # convention, reproduced by the unified scenario factory.
        spec = ScenarioSpec(
            name=f"soak_r{reader_id}_g{generation}",
            n_tags=cfg.tags_per_reader, bitrate_bps=10e3,
            tag_id_base=generation * cfg.tags_per_reader,
            spawn_sim_rng=False)
        synth = ScenarioSynth(
            spec, profile=profile,
            rng=np.random.default_rng(
                (cfg.seed, reader_id, generation)))
        capture = synth.capture(cfg.epoch_s, epoch_index=pool_index)
        trace = capture.trace
        chunk_samples = max(1, len(trace) // cfg.chunks_per_epoch)
        fs = trace.sample_rate_hz
        chunks = [
            (chunk, (chunk.start_time_s - trace.start_time_s) * fs)
            for chunk in chunk_trace(trace, chunk_samples)]
        epochs.append(chunks)
    return epochs


def build_traffic(cfg: SoakConfig,
                  profile: Optional[SimulationProfile] = None
                  ) -> Dict[int, ReaderTraffic]:
    """Pre-render every reader's epoch pool (the expensive part)."""
    profile = profile or SimulationProfile.fast()
    return {reader_id: _build_reader_pool(reader_id, cfg, profile)
            for reader_id in range(cfg.n_readers)}


class _PhaseProbe:
    """Collects per-chunk latencies and samples queue depths."""

    def __init__(self, service: DecodeService):
        self.service = service
        self.latencies: List[float] = []
        self.max_queue_depth = 0
        self._lock = threading.Lock()
        service.add_result_handler(self._on_result)

    def _on_result(self, outcome: ChunkResult) -> None:
        if outcome.status != "shed":
            with self._lock:
                self.latencies.append(outcome.latency_s)

    def sample_queues(self) -> None:
        depth = max(self.service.snapshot().queue_depths.values(),
                    default=0)
        self.max_queue_depth = max(self.max_queue_depth, depth)

    def percentile(self, q: float) -> float:
        with self._lock:
            if not self.latencies:
                return 0.0
            return float(np.percentile(self.latencies, q))


async def _replay_phase(cfg: SoakConfig,
                        traffic: Dict[int, ReaderTraffic],
                        service_config: ServiceConfig,
                        duration_s: float,
                        offered_samples_per_second: Optional[float],
                        injector: Optional[ChaosInjector] = None,
                        should_stop=lambda: False
                        ) -> PhaseReport:
    """Replay traffic for ``duration_s``; paced when a target offered
    rate is given (open loop), queue-backpressured otherwise.  With an
    ``injector``, each chunk's arrival clock may be skewed before
    submission (the injector's submit-side fault).  ``should_stop``
    (polled between epochs) ends the phase early but still drains —
    the CLI's graceful-SIGTERM path."""
    report = PhaseReport()
    async with DecodeService(service_config) as service:
        probe = _PhaseProbe(service)
        cursors = {reader: 0 for reader in traffic}
        seqs = {reader: 0 for reader in traffic}
        start = time.perf_counter()
        offered_samples = 0
        next_deadline = start
        while time.perf_counter() - start < duration_s \
                and not should_stop():
            for reader_id, pool in traffic.items():
                epoch = pool[cursors[reader_id] % len(pool)]
                cursors[reader_id] += 1
                for chunk, sample_offset in epoch:
                    if injector is not None:
                        skew = injector.skew_for(reader_id, 0,
                                                 seqs[reader_id])
                        seqs[reader_id] += 1
                        if skew:
                            chunk = IQTrace(
                                samples=chunk.samples,
                                sample_rate_hz=chunk.sample_rate_hz,
                                start_time_s=(chunk.start_time_s
                                              + skew))
                    await service.submit(
                        reader_id=reader_id, antenna=0, trace=chunk,
                        sample_offset=sample_offset)
                    offered_samples += len(chunk)
                    if offered_samples_per_second is not None:
                        next_deadline += (len(chunk)
                                          / offered_samples_per_second)
                        delay = next_deadline - time.perf_counter()
                        if delay > 0:
                            await asyncio.sleep(delay)
                probe.sample_queues()
            # Yield so worker completions propagate even when the
            # closed-loop producer never blocks on a full queue.
            await asyncio.sleep(0)
        probe.sample_queues()
        await service.drain()
        wall = time.perf_counter() - start
        stats = service.snapshot()
        report.cache_stats = service.cache_stats()
        # Live exposition page, for CLIs; not part of the JSON schema
        # (PhaseReport fields serialize, dynamic attributes do not).
        report.metrics_text = service.render_metrics()
    report.wall_s = wall
    report.submitted = stats.submitted
    report.decoded = stats.decoded
    report.failed = stats.failed
    report.shed = stats.shed
    report.samples_offered = offered_samples
    report.samples_decoded = stats.samples_decoded
    report.sustained_samples_per_second = (
        stats.samples_decoded / wall if wall > 0 else 0.0)
    report.offered_samples_per_second = (
        offered_samples / wall if wall > 0 else 0.0)
    report.p50_chunk_latency_s = probe.percentile(50.0)
    report.p99_chunk_latency_s = probe.percentile(99.0)
    report.max_queue_depth = probe.max_queue_depth
    report.shed_fraction = (
        stats.shed / stats.completed if stats.completed else 0.0)
    report.accounting_exact = (
        stats.submitted == stats.decoded + stats.failed + stats.shed)
    return report


def _service_config(cfg: SoakConfig, overflow: str,
                    profile: SimulationProfile,
                    n_shards: Optional[int] = None,
                    executor: Optional[str] = None) -> ServiceConfig:
    decoder = LFDecoderConfig(candidate_bitrates_bps=[10e3],
                              profile=profile)
    return ServiceConfig(n_shards=cfg.n_shards if n_shards is None
                         else n_shards,
                         executor=cfg.executor if executor is None
                         else executor,
                         queue_depth=cfg.queue_depth,
                         ring_samples=cfg.ring_samples,
                         overflow=overflow,
                         decoder=decoder,
                         seed=cfg.seed)


def _run_chaos_phase(cfg: SoakConfig,
                     traffic: Dict[int, ReaderTraffic],
                     chaos: ChaosConfig,
                     profile: SimulationProfile) -> PhaseReport:
    """One open-loop replay under a chaos cocktail.

    Shedding stays enabled (a stalled or dying worker must not wedge
    the producer), every injected fault is counted, and any worker
    escape that is not a deliberate kill is recorded as unexpected.
    """
    base = _service_config(cfg, SHED_OLDEST, profile)
    config, injector = chaos_service_config(
        base, replace(chaos, seed=cfg.seed))
    with capture_thread_exceptions() as escapes:
        report = asyncio.run(_replay_phase(
            cfg, traffic, config, cfg.chaos_duration_s,
            offered_samples_per_second=None, injector=injector))
    report.injected = injector.counts()
    report.unexpected_thread_exceptions = len(escapes.unexpected)
    return report


#: Shard counts the ``--scaling-sweep`` mode measures by default.
DEFAULT_SCALING_SHARDS: Tuple[int, ...] = (1, 2, 4)


def run_scaling_sweep(cfg: SoakConfig,
                      traffic: Dict[int, ReaderTraffic],
                      profile: SimulationProfile,
                      executors: Tuple[str, ...] = (THREAD, PROCESS),
                      shard_counts: Tuple[int, ...]
                      = DEFAULT_SCALING_SHARDS,
                      duration_s: Optional[float] = None,
                      log=lambda msg: None,
                      should_stop=lambda: False
                      ) -> Dict[str, Dict[str, PhaseReport]]:
    """Closed-loop throughput at each (executor, n_shards) cell.

    Replays the *same* pre-rendered traffic per cell, so the curve
    isolates executor/shard scaling from workload variance.  Returns
    ``{executor: {str(n_shards): PhaseReport}}`` — the shape
    ``SoakReport.scaling`` serializes into ``BENCH_service.json``.
    """
    duration = cfg.duration_s if duration_s is None else duration_s
    curves: Dict[str, Dict[str, PhaseReport]] = {}
    for executor in executors:
        for n_shards in shard_counts:
            if should_stop():
                return curves
            log(f"scaling [{executor} x{n_shards}]: closed loop, "
                f"{duration:.0f}s")
            phase = asyncio.run(_replay_phase(
                cfg, traffic,
                _service_config(cfg, BLOCK, profile,
                                n_shards=n_shards, executor=executor),
                duration, offered_samples_per_second=None,
                should_stop=should_stop))
            log(f"  sustained "
                f"{phase.sustained_samples_per_second:,.0f} samples/s")
            curves.setdefault(executor, {})[str(n_shards)] = phase
    return curves


def run_soak(cfg: SoakConfig,
             profile: Optional[SimulationProfile] = None,
             log=lambda msg: None,
             chaos_cocktails: Optional[Dict[str, ChaosConfig]] = None,
             scaling_shards: Optional[Tuple[int, ...]] = None,
             scaling_executors: Tuple[str, ...] = (THREAD, PROCESS),
             scaling_duration_s: Optional[float] = None,
             should_stop=lambda: False
             ) -> SoakReport:
    """Run the full soak (throughput phase, then overload phase, then
    one chaos phase per cocktail in ``chaos_cocktails``, then — when
    ``scaling_shards`` is given — a shard-count scaling sweep per
    executor).  ``should_stop`` ends the run early but cleanly: the
    current phase drains, later phases are skipped."""
    profile = profile or SimulationProfile.fast()
    log(f"rendering traffic: {cfg.n_readers} readers x "
        f"{cfg.tags_per_reader} tags, pool of {cfg.pool_epochs} "
        f"epochs, churn every {cfg.churn_every}")
    traffic = build_traffic(cfg, profile)

    log(f"throughput phase [{cfg.executor}]: closed loop, "
        f"{cfg.duration_s:.0f}s")
    throughput = asyncio.run(_replay_phase(
        cfg, traffic, _service_config(cfg, BLOCK, profile),
        cfg.duration_s, offered_samples_per_second=None,
        should_stop=should_stop))
    log(f"  sustained {throughput.sustained_samples_per_second:,.0f} "
        f"samples/s, p99 chunk latency "
        f"{throughput.p99_chunk_latency_s * 1e3:.1f} ms")

    overload = None
    if cfg.overload and throughput.sustained_samples_per_second > 0 \
            and not should_stop():
        offered = (cfg.overload_factor
                   * throughput.sustained_samples_per_second)
        log(f"overload phase: open loop at {offered:,.0f} samples/s "
            f"({cfg.overload_factor:g}x capacity), "
            f"{cfg.duration_s:.0f}s")
        overload = asyncio.run(_replay_phase(
            cfg, traffic, _service_config(cfg, SHED_OLDEST, profile),
            cfg.duration_s, offered_samples_per_second=offered,
            should_stop=should_stop))
        log(f"  shed fraction {overload.shed_fraction:.1%}, max queue "
            f"depth {overload.max_queue_depth}, accounting "
            f"{'exact' if overload.accounting_exact else 'BROKEN'}")

    chaos_reports: Dict[str, PhaseReport] = {}
    for name, chaos in (chaos_cocktails or {}).items():
        if should_stop():
            break
        log(f"chaos phase [{name}]: open loop, "
            f"{cfg.chaos_duration_s:.0f}s")
        phase = _run_chaos_phase(cfg, traffic, chaos, profile)
        injected = ", ".join(f"{k}={v}" for k, v in
                             sorted(phase.injected.items()) if v)
        log(f"  injected {injected or 'nothing'}; accounting "
            f"{'exact' if phase.accounting_exact else 'BROKEN'}, "
            f"{phase.unexpected_thread_exceptions} unexpected thread "
            f"exceptions")
        chaos_reports[name] = phase

    scaling: Dict[str, Dict[str, PhaseReport]] = {}
    if scaling_shards and not should_stop():
        scaling = run_scaling_sweep(
            cfg, traffic, profile, executors=scaling_executors,
            shard_counts=tuple(scaling_shards),
            duration_s=scaling_duration_s, log=log,
            should_stop=should_stop)
    return SoakReport(config=cfg, throughput=throughput,
                      overload=overload, chaos=chaos_reports,
                      scaling=scaling)
