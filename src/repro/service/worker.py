"""Shard workers: per-stream warm SessionDecoders behind bounded queues.

One :class:`ShardWorker` is one daemon thread plus the warm state of
every stream routed to its shard.  The worker loop pops frames in FIFO
order, maps their samples (zero-copy from the shard's
:class:`~repro.service.framing.ChunkRing`, or inline when the ring had
no room), decodes them through the stream's
:class:`~repro.core.session_decoder.SessionDecoder` — so fold /
k-means / lattice caches stay warm chunk to chunk — and hands a
:class:`ChunkResult` to the service's completion callback.

The health model is the PR 3 supervision machinery scaled to a
long-running service:

* a decode that raises is retried up to ``max_attempts`` (same
  semantics as the batch engine's in-worker retry budget);
* a stream whose chunks keep failing has its session **respawned
  cold** after ``respawn_after`` consecutive failures (the service
  analogue of pool respawn — inside each session, the PR 3 tracker
  quarantine already confines repeat warm-fit blowups);
* the worker thread itself is respawned by the service if its loop
  ever dies (it should not: per-chunk exceptions are all absorbed);
* per-stream sessions are LRU-evicted past ``max_sessions`` so tag
  churn cannot grow a shard's memory without bound.

Queue overflow (backpressure) is handled at ``enqueue`` time: under
the ``shed_oldest`` policy the oldest *queued* frame is dropped — its
ring region retired, its shed counter ticked, its submitter notified
with a ``status="shed"`` result — so the queue depth is bounded by
construction and the freshest data always decodes first when the
service is overloaded.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..core.session_decoder import SessionDecoder
from ..types import EpochResult, IQTrace
from .config import BLOCK, SHED_OLDEST, ServiceConfig
from .framing import ChunkFrame, ChunkRing
from .metrics import MetricsRegistry, StageLatencyObserver
from .router import stream_seed

#: Terminal states a submitted chunk can reach.
STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_FAILED = "failed"
STATUS_SHED = "shed"


@dataclass
class ChunkResult:
    """Terminal verdict for one submitted chunk.

    ``result`` carries the full :class:`~repro.types.EpochResult`
    (chunk-local coordinates, exactly what an offline
    ``decode_chunked`` sees per chunk) for decoded chunks and is
    ``None`` for shed or failed ones.  ``latency_s`` is
    ingest-to-completion wall clock (queue wait included);
    ``decode_s`` the decode call alone.
    """

    frame: ChunkFrame
    status: str
    result: Optional[EpochResult] = None
    attempts: int = 0
    error: Optional[str] = None
    latency_s: float = 0.0
    decode_s: float = 0.0
    shard: int = -1

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


@dataclass
class _StreamSlot:
    """One stream's warm decoder plus its health counters."""

    decoder: object
    consecutive_failures: int = 0


class SessionPool:
    """The executor-agnostic half of a shard: warm sessions + retries.

    Everything that must live *next to the decoder state* — the
    per-stream LRU of warm :class:`SessionDecoder`\\ s, the retry
    budget, the consecutive-failure respawn ladder, the stage-latency
    observer — is collected here so the thread executor can run it
    in-process and the process executor can run the **same code**
    inside each shard's child against the child's own
    :class:`MetricsRegistry` (shipped back as snapshot deltas).

    :meth:`decode` returns a plain verdict tuple
    ``(status, result, attempts, error, decode_s)`` rather than a
    :class:`ChunkResult` because across a process boundary the frame's
    bookkeeping (latency, ring retire, completion callbacks) belongs
    to the parent.
    """

    def __init__(self, shard_id: int, config: ServiceConfig,
                 registry: MetricsRegistry):
        self.shard_id = shard_id
        self.config = config
        self._sessions: "OrderedDict[Tuple[int, int], _StreamSlot]" = \
            OrderedDict()
        self._observer = StageLatencyObserver(
            registry, shard_id, buckets=config.latency_buckets)
        self._shard_label = str(shard_id)
        self._m_retries = registry.counter(
            "lf_chunk_retries_total",
            "Decode attempts beyond the first, per shard.")
        self._m_respawns = registry.counter(
            "lf_session_respawns_total",
            "Per-stream sessions restarted cold after repeated "
            "failures.")
        self._m_evictions = registry.counter(
            "lf_session_evictions_total",
            "Per-stream sessions evicted by the LRU cap.")
        self._m_sessions = registry.gauge(
            "lf_live_sessions", "Warm per-stream sessions held.")

    def decode(self, frame: ChunkFrame, samples: np.ndarray
               ) -> Tuple[str, Optional[EpochResult], int,
                          Optional[str], float]:
        """Decode one frame's samples through its stream's warm
        session; returns ``(status, result, attempts, error,
        decode_s)``.  Never raises for an ordinary decode failure; a
        ``BaseException`` (chaos worker kill) escapes to the caller.
        """
        # allow_nonfinite: a corrupted shm region (chaos injection,
        # DMA gone wrong) must reach the decode path's guard stage —
        # which repairs or rejects it — rather than crash on trace
        # validation here and skip the caller's accounting.
        trace = IQTrace(samples=samples,
                        sample_rate_hz=frame.sample_rate_hz,
                        start_time_s=frame.start_time_s,
                        allow_nonfinite=True)
        slot = self._slot_for(frame.stream_key)
        attempts = 0
        error: Optional[str] = None
        result: Optional[EpochResult] = None
        decode_s = 0.0
        while attempts < self.config.max_attempts:
            attempts += 1
            start = time.perf_counter()
            try:
                result = slot.decoder.decode_epoch(
                    trace, sample_offset=frame.sample_offset)
                decode_s = time.perf_counter() - start
                break
            except Exception as exc:  # noqa: BLE001 — supervision
                decode_s = time.perf_counter() - start
                error = f"{type(exc).__name__}: {exc}"
                if attempts < self.config.max_attempts:
                    self._m_retries.inc(1.0, shard=self._shard_label)
        if result is None:
            slot.consecutive_failures += 1
            if slot.consecutive_failures >= self.config.respawn_after:
                self._respawn(frame.stream_key, slot)
            status = STATUS_FAILED
        else:
            slot.consecutive_failures = 0
            status = STATUS_DEGRADED if result.degraded else STATUS_OK
        return status, result, attempts, error, decode_s

    def _slot_for(self, key: Tuple[int, int]) -> _StreamSlot:
        slot = self._sessions.get(key)
        if slot is not None:
            self._sessions.move_to_end(key)
            return slot
        while len(self._sessions) >= self.config.max_sessions:
            self._sessions.popitem(last=False)
            self._m_evictions.inc(1.0, shard=self._shard_label)
        slot = _StreamSlot(decoder=self._build_decoder(key))
        self._sessions[key] = slot
        self._m_sessions.set(float(len(self._sessions)),
                             shard=self._shard_label)
        return slot

    def _build_decoder(self, key: Tuple[int, int]):
        seed = stream_seed(self.config.seed, *key)
        if self.config.decoder_factory is not None:
            return self.config.decoder_factory(key, seed)
        decoder = SessionDecoder(self.config.decoder, rng=seed,
                                 session_config=self.config.session)
        decoder.add_observer(self._observer)
        return decoder

    def _respawn(self, key: Tuple[int, int], slot: _StreamSlot) -> None:
        """Cold-restart a stream whose chunks keep failing."""
        self._sessions[key] = _StreamSlot(
            decoder=self._build_decoder(key))
        self._m_respawns.inc(1.0, shard=self._shard_label,
                             kind="stream_session")

    def cache_stats(self) -> Dict[str, int]:
        """Aggregated warm-cache counters across this pool's sessions
        (hit counters strictly positive = warm state pays)."""
        totals: Dict[str, int] = {}
        for slot in list(self._sessions.values()):
            stats = getattr(slot.decoder, "cache_stats", None)
            if stats:
                for k, v in stats.items():
                    totals[k] = totals.get(k, 0) + int(v)
        return totals


class ShardWorker:
    """One shard: a worker thread, its queue, ring, and warm sessions.

    ``on_result`` is invoked on the worker thread (or, for shed
    frames, on the submitting thread) exactly once per enqueued frame.
    """

    def __init__(self, shard_id: int, config: ServiceConfig,
                 registry: MetricsRegistry,
                 on_result: Callable[[ChunkResult], None]):
        self.shard_id = shard_id
        self.config = config
        self.ring = ChunkRing(config.ring_samples,
                              use_shared_memory=config.use_shared_memory)
        self._on_result = on_result
        self._queue: Deque[ChunkFrame] = deque()
        self._cond = threading.Condition()
        self._stop = False
        self._idle = threading.Condition(self._cond)
        self._in_flight = 0
        # Thread executor: the pool (warm sessions, retries, stage
        # observer) lives right here.  The process executor's subclass
        # leaves this one cold and runs a twin inside the child.
        self.pool = SessionPool(shard_id, config, registry)
        shard = str(shard_id)
        self._m_ingested = registry.counter(
            "lf_chunks_ingested_total",
            "Chunks accepted onto a shard queue.")
        self._m_done = registry.counter(
            "lf_chunks_completed_total",
            "Chunks reaching a terminal status, by status.")
        self._m_shed = registry.counter(
            "lf_chunks_shed_total",
            "Chunks dropped (oldest first) by queue backpressure.")
        self._m_samples = registry.counter(
            "lf_samples_decoded_total",
            "IQ samples decoded to completion.")
        self._m_respawns = registry.counter(
            "lf_session_respawns_total",
            "Per-stream sessions restarted cold after repeated "
            "failures.")
        self._m_inline = registry.counter(
            "lf_ring_inline_fallbacks_total",
            "Chunks carried inline because the ring had no room.")
        self._m_depth = registry.gauge(
            "lf_queue_depth", "Frames waiting on the shard queue.")
        self._m_latency = registry.histogram(
            "lf_chunk_latency_seconds",
            "Ingest-to-completion latency per chunk.",
            buckets=config.latency_buckets)
        self._m_decode = registry.histogram(
            "lf_chunk_decode_seconds",
            "Decode call latency per chunk (queue wait excluded).",
            buckets=config.latency_buckets)
        self._shard_label = shard
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def prestart(self) -> None:
        """Executor hook run by the service *before* any worker thread
        starts.  The process executor forks its children here, while
        the parent is still single-threaded (forking a multi-threaded
        process can inherit locks mid-acquire)."""

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name=f"lf-shard-{self.shard_id}",
            daemon=True)
        self._thread.start()

    def stop(self, drain: bool = True) -> None:
        if drain:
            self.join_idle()
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        # Anything still queued after a no-drain stop is shed.
        while True:
            with self._cond:
                if not self._queue:
                    break
                frame = self._queue.popleft()
            self._shed(frame, reason="service stopped")
        self._shutdown_executor()
        self.ring.close()

    def _shutdown_executor(self) -> None:
        """Executor hook run by :meth:`stop` after the worker thread
        has exited and the queue is empty, before the ring closes.
        The process executor stops and reaps its child here."""

    def ensure_alive(self) -> bool:
        """Respawn the worker thread if its loop died.  True if it
        had to be respawned."""
        if self._thread is not None and self._thread.is_alive():
            return False
        if self._stop:
            return False
        self._m_respawns.inc(1.0, shard=self._shard_label,
                             kind="worker_thread")
        self.start()
        return True

    def join_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue is empty and nothing is in flight.

        A worker thread killed mid-frame (chaos injection, interpreter
        shutdown races) would leave queued frames stranded forever;
        the wait therefore ticks and respawns the thread whenever work
        remains but the loop is dead.
        """
        deadline = None if timeout is None else \
            time.perf_counter() + timeout
        while True:
            with self._cond:
                if not self._queue and not self._in_flight:
                    return True
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        return False
                tick = 0.1 if remaining is None \
                    else min(remaining, 0.1)
                self._idle.wait(timeout=tick)
                work_remains = bool(self._queue or self._in_flight)
            if work_remains:
                self.ensure_alive()

    # -- ingest side -------------------------------------------------------

    def enqueue(self, frame: ChunkFrame) -> List[ChunkFrame]:
        """Queue a frame; returns the frames shed to make room.

        Under the ``block`` policy the caller must have reserved room
        via :meth:`wait_for_room` first (the async front end does);
        an over-full queue still sheds rather than growing unbounded.
        """
        shed: List[ChunkFrame] = []
        with self._cond:
            while len(self._queue) >= self.config.queue_depth:
                shed.append(self._queue.popleft())
            self._queue.append(frame)
            self._m_ingested.inc(1.0, shard=self._shard_label)
            self._m_depth.set(float(len(self._queue)),
                              shard=self._shard_label)
            self._cond.notify()
        for dropped in shed:
            self._shed(dropped, reason="queue full (oldest dropped)")
        return shed

    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def has_room(self) -> bool:
        with self._cond:
            return len(self._queue) < self.config.queue_depth

    def _shed(self, frame: ChunkFrame, reason: str) -> None:
        if frame.frame_id >= 0:
            self.ring.retire(frame.frame_id)
        self._m_shed.inc(1.0, shard=self._shard_label)
        self._m_done.inc(1.0, shard=self._shard_label,
                         status=STATUS_SHED)
        latency = time.perf_counter() - frame.submitted_at
        self._m_latency.observe(latency, shard=self._shard_label,
                                status=STATUS_SHED)
        self._on_result(ChunkResult(
            frame=frame, status=STATUS_SHED, error=reason,
            latency_s=latency, shard=self.shard_id))

    # -- worker loop -------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stop:
                    self._cond.wait()
                if self._stop and not self._queue:
                    return
                frame = self._queue.popleft()
                self._in_flight += 1
                self._m_depth.set(float(len(self._queue)),
                                  shard=self._shard_label)
            try:
                outcome = self._decode_frame(frame)
            except BaseException as exc:
                # A non-Exception escape (chaos worker kill, interpreter
                # teardown) is about to take this thread down.  The
                # frame's ring region was already retired inside
                # _decode_frame's finally; deliver its terminal verdict
                # so the service's accounting stays exact, then let the
                # thread die — ensure_alive()/join_idle() respawn it.
                self._m_done.inc(1.0, shard=self._shard_label,
                                 status=STATUS_FAILED)
                latency = time.perf_counter() - frame.submitted_at
                self._m_latency.observe(latency,
                                        shard=self._shard_label,
                                        status=STATUS_FAILED)
                self._on_result(ChunkResult(
                    frame=frame, status=STATUS_FAILED,
                    error=f"worker died: {type(exc).__name__}: {exc}",
                    latency_s=latency, shard=self.shard_id))
                raise
            finally:
                with self._cond:
                    self._in_flight -= 1
                    self._idle.notify_all()
            self._on_result(outcome)

    def _decode_frame(self, frame: ChunkFrame) -> ChunkResult:
        samples = (frame.inline if frame.frame_id < 0
                   else self.ring.view(frame.frame_id))
        try:
            status, result, attempts, error, decode_s = \
                self.pool.decode(frame, samples)
        finally:
            # Retire even when a BaseException (chaos worker kill)
            # aborts the decode: a dead shard must not leak its
            # frame's ring region — or, for shared-memory rings, the
            # /dev/shm backing it pins.
            if frame.frame_id >= 0:
                self.ring.retire(frame.frame_id)
        return self._complete(frame, status, result, attempts, error,
                              decode_s)

    def _complete(self, frame: ChunkFrame, status: str,
                  result: Optional[EpochResult], attempts: int,
                  error: Optional[str], decode_s: float
                  ) -> ChunkResult:
        """Parent-side terminal accounting shared by both executors:
        counters, latency/decode histograms, and the verdict record."""
        latency = time.perf_counter() - frame.submitted_at
        if result is not None:
            self._m_samples.inc(float(frame.n_samples),
                                shard=self._shard_label)
            self._m_decode.observe(decode_s, shard=self._shard_label)
        self._m_done.inc(1.0, shard=self._shard_label, status=status)
        self._m_latency.observe(latency, shard=self._shard_label,
                                status=status)
        return ChunkResult(frame=frame, status=status, result=result,
                           attempts=attempts, error=error,
                           latency_s=latency, decode_s=decode_s,
                           shard=self.shard_id)

    # -- warm-session management -------------------------------------------

    def cache_stats(self) -> Dict[str, int]:
        """Aggregated warm-cache counters across this shard's
        sessions (hit counters strictly positive = warm state pays)."""
        return self.pool.cache_stats()
