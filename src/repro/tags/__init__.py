"""Behavioural models of backscatter tags.

:class:`LFTag` is the laissez-faire tag of the paper: it blindly starts
transmitting NRZ ASK the moment the carrier appears, at a bitrate that
is a multiple of the base rate, from a start offset given by its
comparator jitter.  The TDMA and Buzz tags model the baselines of
Section 4.2 and are driven by their protocol simulators in
:mod:`repro.baselines`.
"""

from .base import (
    FixedPayload,
    RandomPayload,
    CounterPayload,
    UniformOffsetModel,
    TagEpochPlan,
    build_frame,
    frame_payload,
)
from .lf_tag import LFTag
from .ask_tag import AskTag
from .tdma_tag import TdmaTag
from .buzz_tag import BuzzTag

__all__ = [
    "FixedPayload",
    "RandomPayload",
    "CounterPayload",
    "UniformOffsetModel",
    "TagEpochPlan",
    "build_frame",
    "frame_payload",
    "LFTag",
    "AskTag",
    "TdmaTag",
    "BuzzTag",
]
