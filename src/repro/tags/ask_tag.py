"""Plain single-tag ASK transmitter, the Figure 14 robustness baseline.

Identical RF behaviour to an :class:`~repro.tags.lf_tag.LFTag` — NRZ
on-off keying — but intended for the single-tag SNR comparison, so its
start offset is deterministic and its frame carries the same header the
conventional ASK receiver would train its timing on.
"""

from __future__ import annotations

from typing import Optional

from .. import constants
from ..types import SimulationProfile, TagConfig
from ..utils.rng import SeedLike
from .base import FixedOffsetModel, PayloadSource
from .lf_tag import LFTag


class AskTag(LFTag):
    """A single conventional ASK tag with a deterministic start offset."""

    def __init__(self, config: TagConfig,
                 payload_source: Optional[PayloadSource] = None,
                 start_offset_s: float = 0.0,
                 profile: Optional[SimulationProfile] = None,
                 preamble_bits: int = constants.PREAMBLE_BITS,
                 rng: SeedLike = None):
        super().__init__(
            config,
            payload_source=payload_source,
            offset_model=FixedOffsetModel(start_offset_s),
            profile=profile,
            preamble_bits=preamble_bits,
            rng=rng,
        )
