"""Shared tag machinery: payload sources, framing, offset models.

Framing (Section 3.4): every epoch a tag sends a short header — an
alternating preamble that gives the reader's eye-pattern fold strong
periodic edges, followed by a single known anchor bit that disambiguates
the rising/falling IQ clusters — and then its payload bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence

import numpy as np

from .. import constants
from ..errors import ConfigurationError
from ..utils.rng import SeedLike, make_rng


def build_frame(payload: Sequence[int],
                preamble_bits: int = constants.PREAMBLE_BITS,
                anchor_bit: int = constants.ANCHOR_BIT) -> np.ndarray:
    """Prefix ``payload`` with the alternating preamble and anchor bit.

    The preamble is ``1010...`` (starting with 1 so the very first
    transmitted edge is a rising one) and the anchor has the known value
    the decoder uses as its reference (Table 1).
    """
    pay = np.asarray(payload, dtype=np.int8)
    if pay.ndim != 1:
        raise ConfigurationError("payload must be 1-D")
    if pay.size and not np.all((pay == 0) | (pay == 1)):
        raise ConfigurationError("payload bits must be 0/1")
    if preamble_bits < 0:
        raise ConfigurationError("preamble length must be >= 0")
    if anchor_bit not in (0, 1):
        raise ConfigurationError("anchor bit must be 0 or 1")
    preamble = np.fromiter(((k + 1) % 2 for k in range(preamble_bits)),
                           dtype=np.int8, count=preamble_bits)
    return np.concatenate([preamble, np.array([anchor_bit], dtype=np.int8),
                           pay])


def frame_payload(frame: Sequence[int],
                  preamble_bits: int = constants.PREAMBLE_BITS) -> np.ndarray:
    """Strip the preamble and anchor from a frame, returning the payload."""
    arr = np.asarray(frame, dtype=np.int8)
    header = preamble_bits + 1
    if arr.size < header:
        raise ConfigurationError(
            f"frame of {arr.size} bits is shorter than the {header}-bit "
            "header")
    return arr[header:]


class PayloadSource(Protocol):
    """Supplies payload bits for each epoch."""

    def bits(self, epoch_index: int, n_bits: int) -> np.ndarray:
        """Return exactly ``n_bits`` payload bits for ``epoch_index``."""
        ...


class RandomPayload:
    """Independent uniform random payload bits (sensor-stream stand-in)."""

    def __init__(self, rng: SeedLike = None):
        self._rng = make_rng(rng)

    def bits(self, epoch_index: int, n_bits: int) -> np.ndarray:
        if n_bits < 0:
            raise ConfigurationError(f"n_bits must be >= 0, got {n_bits}")
        return self._rng.integers(0, 2, n_bits, dtype=np.int8)


class FixedPayload:
    """A fixed message repeated (and truncated) to fill each epoch.

    Used by the identification experiments, where every epoch carries the
    same EPC identifier.
    """

    def __init__(self, message: Sequence[int]):
        arr = np.asarray(message, dtype=np.int8)
        if arr.size == 0:
            raise ConfigurationError("message must not be empty")
        if not np.all((arr == 0) | (arr == 1)):
            raise ConfigurationError("message bits must be 0/1")
        self.message = arr

    def bits(self, epoch_index: int, n_bits: int) -> np.ndarray:
        if n_bits < 0:
            raise ConfigurationError(f"n_bits must be >= 0, got {n_bits}")
        reps = int(np.ceil(n_bits / self.message.size)) if n_bits else 0
        return np.tile(self.message, max(reps, 1))[:n_bits]


class CounterPayload:
    """Incrementing sample counter, like a sense-and-transmit sensor.

    Emits consecutive ``word_bits``-wide big-endian counter values; a
    1 Hz temperature sensor streaming raw ADC words looks exactly like
    this on the air.
    """

    def __init__(self, word_bits: int = 16, start: int = 0):
        if word_bits < 1:
            raise ConfigurationError("word width must be >= 1 bit")
        if start < 0:
            raise ConfigurationError("start must be >= 0")
        self.word_bits = word_bits
        self._next = start

    def bits(self, epoch_index: int, n_bits: int) -> np.ndarray:
        if n_bits < 0:
            raise ConfigurationError(f"n_bits must be >= 0, got {n_bits}")
        out = np.empty(0, dtype=np.int8)
        while out.size < n_bits:
            value = self._next % (1 << self.word_bits)
            self._next += 1
            word = np.fromiter(
                ((value >> (self.word_bits - 1 - b)) & 1
                 for b in range(self.word_bits)),
                dtype=np.int8, count=self.word_bits)
            out = np.concatenate([out, word])
        return out[:n_bits]


class OffsetModel(Protocol):
    """Produces the transmit-start offset for each epoch."""

    def fire_time_s(self) -> float:
        ...


class UniformOffsetModel:
    """Start offsets drawn uniformly from ``[min_s, min_s + spread_s)``.

    A simple stand-in for the comparator-jitter chain when an experiment
    wants direct control over the offset distribution (e.g. to force
    collisions for Table 2).
    """

    def __init__(self, spread_s: float, min_s: float = 0.0,
                 rng: SeedLike = None):
        if spread_s < 0:
            raise ConfigurationError(f"spread must be >= 0, got {spread_s}")
        if min_s < 0:
            raise ConfigurationError(f"min must be >= 0, got {min_s}")
        self.spread_s = spread_s
        self.min_s = min_s
        self._rng = make_rng(rng)

    def fire_time_s(self) -> float:
        if self.spread_s == 0:
            return self.min_s
        return float(self._rng.uniform(self.min_s,
                                       self.min_s + self.spread_s))


class FixedOffsetModel:
    """Always fires at the same offset (used to force edge collisions)."""

    def __init__(self, offset_s: float):
        if offset_s < 0:
            raise ConfigurationError(f"offset must be >= 0, got {offset_s}")
        self.offset_s = offset_s

    def fire_time_s(self) -> float:
        return self.offset_s


@dataclass
class TagEpochPlan:
    """What one tag will transmit during one epoch.

    ``bits`` is the full frame (header + payload); ``start_offset_s`` the
    comparator fire time after carrier-on; ``bit_period_s`` the actual
    (drifted) bit period.
    """

    tag_id: int
    bits: np.ndarray
    start_offset_s: float
    bit_period_s: float
    nominal_bitrate_bps: float

    def __post_init__(self) -> None:
        self.bits = np.asarray(self.bits, dtype=np.int8)
        if self.start_offset_s < 0:
            raise ConfigurationError("start offset must be >= 0")
        if self.bit_period_s <= 0:
            raise ConfigurationError("bit period must be positive")

    @property
    def n_bits(self) -> int:
        return int(self.bits.size)

    @property
    def end_time_s(self) -> float:
        """Time at which the last bit finishes."""
        return self.start_offset_s + self.n_bits * self.bit_period_s

    def payload(self,
                preamble_bits: int = constants.PREAMBLE_BITS) -> np.ndarray:
        """Payload portion of the planned frame."""
        return frame_payload(self.bits, preamble_bits)
