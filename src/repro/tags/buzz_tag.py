"""Buzz tag model: lock-step randomized retransmission (Section 2.2).

Buzz [Wang et al., SIGCOMM 2012] lets all tags transmit synchronously,
bit-by-bit.  Each message bit is retransmitted ``m`` times; in
retransmission slot t, tag i reflects ``d[t, i] * b[i]`` where ``d`` is
a pre-agreed pseudo-random 0/1 matrix.  The reader, knowing ``d`` and
the per-tag channel coefficients, inverts the linear system to recover
all tags' bits (Equation 1 of the paper).

The tag therefore needs a lock-step clock and a buffer to hold samples
during retransmissions — complexity the LF tag avoids.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..types import TagConfig
from ..utils.rng import SeedLike, make_rng


def randomization_matrix(m: int, n: int, seed: int = 0) -> np.ndarray:
    """The pre-defined random 0/1 matrix d of Equation 1.

    Deterministic in ``seed`` because reader and tags must agree on it
    offline.  Guarantees every tag participates in at least one slot.
    """
    if m < 1 or n < 1:
        raise ConfigurationError("matrix dimensions must be >= 1")
    gen = np.random.default_rng(seed)
    for _ in range(1000):
        d = gen.integers(0, 2, (m, n), dtype=np.int8)
        if np.all(d.sum(axis=0) > 0) and np.all(d.sum(axis=1) > 0):
            return d
    raise ConfigurationError(
        f"could not draw a usable {m}x{n} randomization matrix")


class BuzzTag:
    """One Buzz tag: reflects ``d[t, i] & bit`` in lock-step slot t."""

    def __init__(self, config: TagConfig, column: np.ndarray):
        col = np.asarray(column, dtype=np.int8)
        if col.ndim != 1 or col.size < 1:
            raise ConfigurationError(
                "randomization column must be a non-empty 1-D array")
        if not np.all((col == 0) | (col == 1)):
            raise ConfigurationError("randomization column must be 0/1")
        self.config = config
        self.column = col

    @property
    def tag_id(self) -> int:
        return self.config.tag_id

    @property
    def n_retransmissions(self) -> int:
        return int(self.column.size)

    def states_for_bit(self, bit: int) -> np.ndarray:
        """Antenna states over the m lock-step slots for one message bit."""
        if bit not in (0, 1):
            raise ConfigurationError(f"bit must be 0/1, got {bit}")
        return (self.column * bit).astype(np.int8)

    def states_for_message(self, bits: np.ndarray) -> np.ndarray:
        """Antenna-state matrix (n_bits, m) for a whole message."""
        arr = np.asarray(bits, dtype=np.int8)
        if arr.ndim != 1:
            raise ConfigurationError("message must be 1-D")
        if arr.size and not np.all((arr == 0) | (arr == 1)):
            raise ConfigurationError("message bits must be 0/1")
        return arr[:, None] * self.column[None, :]


def estimation_preamble(n_tags: int, repetitions: int = 4) -> np.ndarray:
    """Channel-estimation schedule: each tag toggles alone, repeated.

    Buzz estimates per-tag channel coefficients with compressive
    sensing; we model the equivalent airtime as a per-tag sounding
    schedule of ``repetitions`` exclusive slots each, which is the same
    order of overhead.  Returns a (n_tags * repetitions, n_tags) 0/1
    activity matrix.
    """
    if n_tags < 1:
        raise ConfigurationError("need at least one tag")
    if repetitions < 1:
        raise ConfigurationError("need at least one repetition")
    schedule = np.zeros((n_tags * repetitions, n_tags), dtype=np.int8)
    for rep in range(repetitions):
        for tag in range(n_tags):
            schedule[rep * n_tags + tag, tag] = 1
    return schedule
