"""The laissez-faire tag: blind, bufferless, asynchronous NRZ ASK.

The tag's entire protocol (Section 3): when it sees the carrier, its
comparator fires after a naturally-jittered charge-up delay and it
clocks out its frame at a bitrate that is a multiple of the base rate.
No decoding, no MAC, no packet buffer, no high-speed oscillator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import constants
from ..errors import ConfigurationError
from ..phy.capacitor import CapacitorModel, ComparatorJitterModel
from ..phy.clock import DriftingClock
from ..types import SimulationProfile, TagConfig
from ..utils.rng import SeedLike, make_rng
from .base import (OffsetModel, PayloadSource, RandomPayload, TagEpochPlan,
                   build_frame)


def default_offset_model(bit_period_s: float,
                         rng: SeedLike = None,
                         tau_periods: float = 6.0,
                         energy_spread: float = 0.25) -> ComparatorJitterModel:
    """Comparator-jitter model whose fire times spread over several bits.

    The receive capacitor's RC constant is set to ``tau_periods`` tag
    bit periods: with the paper's 20 % capacitor tolerance and
    placement-dependent energy spread, the resulting fire times vary by
    a few bit periods across tags and epochs, so the fire time *modulo
    one bit period* — the quantity the eye-pattern fold sees — is close
    to uniform.  This is the fine-grained offset randomization of
    Section 3.2, obtained with no fine-grained clock at the tag.
    """
    c_farad = 1e-9
    capacitor = CapacitorModel(c_farad=c_farad,
                               r_ohm=tau_periods * bit_period_s / c_farad,
                               v_max=1.8)
    return ComparatorJitterModel(capacitor=capacitor, threshold_v=1.0,
                                 energy_spread=energy_spread, rng=rng)


class LFTag:
    """One laissez-faire backscatter tag.

    Parameters
    ----------
    config:
        Static tag parameters (id, bitrate, channel coefficient, drift).
    payload_source:
        Supplies payload bits per epoch; defaults to random bits.
    offset_model:
        Start-offset generator; defaults to the comparator-jitter chain
        scaled to the tag's bit period.
    profile:
        Simulation profile used to validate the bitrate against the base
        rate.
    """

    def __init__(self, config: TagConfig,
                 payload_source: Optional[PayloadSource] = None,
                 offset_model: Optional[OffsetModel] = None,
                 profile: Optional[SimulationProfile] = None,
                 preamble_bits: int = constants.PREAMBLE_BITS,
                 rng: SeedLike = None):
        self.config = config
        self.profile = profile or SimulationProfile.paper()
        self.profile.validate_bitrate(config.bitrate_bps)
        self.preamble_bits = preamble_bits
        gen = make_rng(rng)
        self.payload_source = payload_source or RandomPayload(
            rng=np.random.default_rng(gen.integers(0, 2 ** 63)))
        bit_period = 1.0 / config.bitrate_bps
        self.offset_model = offset_model or default_offset_model(
            bit_period, rng=np.random.default_rng(gen.integers(0, 2 ** 63)))
        self.clock = DriftingClock(
            nominal_period_s=bit_period,
            drift_ppm=config.clock_drift_ppm,
            rng=np.random.default_rng(gen.integers(0, 2 ** 63)))

    @property
    def tag_id(self) -> int:
        return self.config.tag_id

    @property
    def bitrate_bps(self) -> float:
        return self.config.bitrate_bps

    def header_bits(self) -> int:
        """Total header length (preamble + anchor)."""
        return self.preamble_bits + 1

    def plan_epoch(self, epoch_index: int,
                   epoch_duration_s: float) -> TagEpochPlan:
        """Decide what this tag transmits during one epoch.

        The tag fills the epoch: header first, then as many payload bits
        as fit between its (random) start offset and carrier-off.
        """
        if epoch_duration_s <= 0:
            raise ConfigurationError("epoch duration must be positive")
        offset = self.config.mean_offset_s + self.offset_model.fire_time_s()
        period = self.clock.actual_period_s
        budget = epoch_duration_s - offset
        n_total = int(np.floor(budget / period))
        header = self.header_bits()
        if n_total < header + 1:
            raise ConfigurationError(
                f"epoch of {epoch_duration_s * 1e3:.3f} ms cannot fit the "
                f"{header}-bit header plus one payload bit for tag "
                f"{self.tag_id} at {self.bitrate_bps:.0f} bps "
                f"(offset {offset * 1e6:.1f} us)")
        n_payload = n_total - header
        payload = self.payload_source.bits(epoch_index, n_payload)
        frame = build_frame(payload, preamble_bits=self.preamble_bits)
        return TagEpochPlan(
            tag_id=self.tag_id,
            bits=frame,
            start_offset_s=offset,
            bit_period_s=period,
            nominal_bitrate_bps=self.bitrate_bps,
        )
