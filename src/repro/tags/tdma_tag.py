"""TDMA tag model: the stripped EPC Gen 2 baseline of Section 4.2.

Each tag buffers its samples and answers only in its assigned slot with
a fixed-length 96-bit message at 100 kbps.  Unlike the LF tag it must
(a) decode the reader's slot-boundary control messages and (b) hold a
packet buffer between slots — the complexity/power cost quantified in
Table 3 and Figure 13.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from .. import constants
from ..errors import ConfigurationError
from ..types import TagConfig
from ..utils.rng import SeedLike, make_rng


class TdmaTag:
    """A slotted tag with a FIFO buffer and reader-assigned slots."""

    def __init__(self, config: TagConfig,
                 slot_bits: int = constants.TDMA_SLOT_BITS,
                 buffer_capacity_bits: int = 2048,
                 rng: SeedLike = None):
        if slot_bits < 1:
            raise ConfigurationError("slot length must be >= 1 bit")
        if buffer_capacity_bits < slot_bits:
            raise ConfigurationError(
                "buffer must hold at least one slot's worth of bits")
        self.config = config
        self.slot_bits = slot_bits
        self.buffer_capacity_bits = buffer_capacity_bits
        self._buffer: Deque[int] = deque(maxlen=buffer_capacity_bits)
        self._dropped_bits = 0
        self._rng = make_rng(rng)

    @property
    def tag_id(self) -> int:
        return self.config.tag_id

    @property
    def buffered_bits(self) -> int:
        return len(self._buffer)

    @property
    def dropped_bits(self) -> int:
        """Bits lost to buffer overflow while waiting for a slot."""
        return self._dropped_bits

    def sense(self, bits: np.ndarray) -> None:
        """Push freshly sensed bits into the FIFO (oldest dropped on
        overflow, like real bounded sensor buffers)."""
        arr = np.asarray(bits, dtype=np.int8)
        if arr.size and not np.all((arr == 0) | (arr == 1)):
            raise ConfigurationError("sensed bits must be 0/1")
        overflow = max(len(self._buffer) + arr.size
                       - self.buffer_capacity_bits, 0)
        self._dropped_bits += overflow
        self._buffer.extend(int(b) for b in arr)

    def respond_in_slot(self) -> Optional[np.ndarray]:
        """Transmit one slot's worth of buffered bits, or None if the
        buffer cannot fill a slot (the slot is then wasted)."""
        if len(self._buffer) < self.slot_bits:
            return None
        out = np.fromiter((self._buffer.popleft()
                           for _ in range(self.slot_bits)),
                          dtype=np.int8, count=self.slot_bits)
        return out

    def make_identifier(self, n_bits: int = constants.EPC_ID_BITS
                        ) -> np.ndarray:
        """A random EPC-style identifier for inventory experiments."""
        if n_bits < 1:
            raise ConfigurationError("identifier must be >= 1 bit")
        return self._rng.integers(0, 2, n_bits, dtype=np.int8)
