"""Core datatypes shared across the LF-Backscatter reproduction.

The types here are intentionally thin: an :class:`IQTrace` is a validated
wrapper around a complex numpy array, a :class:`TagConfig` pins down one
tag's transmit behaviour, and :class:`DecodedStream` /
:class:`EpochResult` carry decoder output back to callers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import constants
from .errors import ConfigurationError, SignalError


@dataclass(frozen=True)
class SimulationProfile:
    """Sampling-scale profile binding sample rate to decoder expectations.

    The decoder's maths is expressed in samples-per-bit, so any profile
    that preserves the paper's 250x oversampling ratio exercises the
    identical code paths.  ``paper()`` matches Section 4.1's setup;
    ``fast()`` is a 10x smaller clone used by quick unit tests.
    """

    sample_rate_hz: float = constants.READER_SAMPLE_RATE_HZ
    base_rate_bps: float = constants.BASE_RATE_BPS
    default_bitrate_bps: float = constants.DEFAULT_BITRATE_BPS
    edge_width_samples: int = constants.EDGE_WIDTH_SAMPLES

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ConfigurationError("sample_rate_hz must be positive")
        if self.base_rate_bps <= 0:
            raise ConfigurationError("base_rate_bps must be positive")
        if self.default_bitrate_bps < self.base_rate_bps:
            raise ConfigurationError(
                "default bitrate must be at least the base rate")
        if self.edge_width_samples < 1:
            raise ConfigurationError("edge_width_samples must be >= 1")

    @classmethod
    def paper(cls) -> "SimulationProfile":
        """The paper's reference setup: 25 Msps reader, 100 kbps tags."""
        return cls()

    @classmethod
    def fast(cls) -> "SimulationProfile":
        """A 10x-scaled profile with the same 250x oversampling ratio."""
        return cls(sample_rate_hz=2.5e6, base_rate_bps=10.0,
                   default_bitrate_bps=10e3)

    def samples_per_bit(self, bitrate_bps: Optional[float] = None) -> float:
        """Reader samples spanned by one bit at ``bitrate_bps``."""
        rate = self.default_bitrate_bps if bitrate_bps is None else bitrate_bps
        return constants.samples_per_bit(rate, self.sample_rate_hz)

    def validate_bitrate(self, bitrate_bps: float) -> None:
        """Raise unless ``bitrate_bps`` is a positive multiple of base rate.

        Section 3.2: "the rate selected by the sensor is not arbitrary,
        but it is a multiple of a base rate".
        """
        if bitrate_bps <= 0:
            raise ConfigurationError(
                f"bitrate must be positive, got {bitrate_bps}")
        multiple = bitrate_bps / self.base_rate_bps
        if abs(multiple - round(multiple)) > 1e-9:
            raise ConfigurationError(
                f"bitrate {bitrate_bps} is not a multiple of the base rate "
                f"{self.base_rate_bps}")


@dataclass
class IQTrace:
    """A complex baseband capture from the reader front end.

    ``samples`` holds I in the real part and Q in the imaginary part,
    exactly how the decoder consumes a USRP capture.

    ``allow_nonfinite`` relaxes the constructor's finiteness check so a
    *raw* capture with dropouts or dead-ADC runs (NaN/Inf samples) can
    be represented at all; such traces must pass through
    :func:`repro.robustness.guard.sanitize_trace` before decoding —
    the decoder's maths assumes finite samples.
    """

    samples: np.ndarray
    sample_rate_hz: float
    start_time_s: float = 0.0
    allow_nonfinite: bool = False

    def __post_init__(self) -> None:
        self.samples = np.asarray(self.samples)
        if self.samples.ndim != 1:
            raise SignalError(
                f"IQ trace must be 1-D, got shape {self.samples.shape}")
        if self.samples.size == 0:
            raise SignalError("IQ trace must not be empty")
        if not np.iscomplexobj(self.samples):
            self.samples = self.samples.astype(np.complex128)
        if not self.allow_nonfinite and (
                not np.all(np.isfinite(self.samples.real))
                or not np.all(np.isfinite(self.samples.imag))):
            raise SignalError("IQ trace contains non-finite samples")
        if self.sample_rate_hz <= 0:
            raise SignalError(
                f"sample rate must be positive, got {self.sample_rate_hz}")
        self._cache: Dict[object, object] = {}

    def __len__(self) -> int:
        return int(self.samples.size)

    # -- derived-array memoisation ----------------------------------------
    #
    # Every decoder stage sweeps the same capture: the edge detector, the
    # analog fallback, and every read_grid_differentials call all need the
    # trace's prefix sum (and the coarse |dS| sweep).  Recomputing a
    # full-capture cumsum per call dominated profiles, so derived arrays
    # are memoised on the trace itself.  The cache assumes ``samples`` is
    # not mutated in place after construction (decoder code never does).

    def cached(self, key, builder):
        """Memoise ``builder()`` on this trace under ``key``."""
        try:
            return self._cache[key]
        except KeyError:
            value = builder()
            self._cache[key] = value
            return value

    def prefix_sum(self) -> np.ndarray:
        """Length n+1 prefix sum of ``samples`` (leading zero).

        ``prefix_sum()[b] - prefix_sum()[a]`` is the sum over ``[a, b)``
        — the O(1) windowed-mean primitive behind the Section 3.1
        differential sweeps.  Computed once per trace and shared by the
        edge detector and the grid readers.
        """
        return self.cached(
            "prefix_sum",
            lambda: np.concatenate([[0], np.cumsum(self.samples)]))

    def __getstate__(self):
        # Derived arrays are cheap to rebuild and can dwarf the capture
        # itself; never ship them across process boundaries.
        state = self.__dict__.copy()
        state["_cache"] = {}
        return state

    @property
    def duration_s(self) -> float:
        """Trace duration in seconds."""
        return self.samples.size / self.sample_rate_hz

    @property
    def i(self) -> np.ndarray:
        """In-phase channel."""
        return self.samples.real

    @property
    def q(self) -> np.ndarray:
        """Quadrature channel."""
        return self.samples.imag

    def time_axis(self) -> np.ndarray:
        """Per-sample timestamps in seconds."""
        return (self.start_time_s
                + np.arange(self.samples.size) / self.sample_rate_hz)

    def slice(self, start: int, stop: int) -> "IQTrace":
        """Return a sub-trace covering samples ``[start, stop)``."""
        if not 0 <= start < stop <= self.samples.size:
            raise SignalError(
                f"invalid slice [{start}, {stop}) for trace of length "
                f"{self.samples.size}")
        return IQTrace(
            samples=self.samples[start:stop],
            sample_rate_hz=self.sample_rate_hz,
            start_time_s=self.start_time_s + start / self.sample_rate_hz,
            allow_nonfinite=self.allow_nonfinite)


@dataclass(frozen=True)
class TagConfig:
    """Static configuration of one simulated backscatter tag.

    ``channel_coefficient`` is the complex coefficient h_i of Equation 1:
    the IQ vector the tag contributes when its antenna is reflecting.
    ``clock_drift_ppm`` models the Moo's crystal (Section 4.1) and
    ``mean_offset_s`` / comparator jitter the capacitor start-up spread
    (Section 3.2, Figure 4).
    """

    tag_id: int
    bitrate_bps: float = constants.DEFAULT_BITRATE_BPS
    channel_coefficient: complex = 0.1 + 0.05j
    clock_drift_ppm: float = constants.DEFAULT_CLOCK_DRIFT_PPM
    mean_offset_s: float = 0.0

    def __post_init__(self) -> None:
        if self.tag_id < 0:
            raise ConfigurationError(f"tag_id must be >= 0, got {self.tag_id}")
        if self.bitrate_bps <= 0:
            raise ConfigurationError(
                f"bitrate must be positive, got {self.bitrate_bps}")
        if abs(self.channel_coefficient) == 0:
            raise ConfigurationError(
                "channel coefficient must be non-zero (a zero coefficient "
                "means the tag is invisible to the reader)")
        if self.clock_drift_ppm < 0:
            raise ConfigurationError("clock drift must be >= 0 ppm")

    def with_coefficient(self, coefficient: complex) -> "TagConfig":
        """Copy of this config with a different channel coefficient."""
        return dataclasses.replace(self, channel_coefficient=coefficient)


class EdgePolarity:
    """Edge state labels used throughout the decoder (Section 3.5).

    RISING / FALLING are real antenna transitions; HOLD_HIGH / HOLD_LOW
    are the "no edge" states that remember the previous edge direction
    (the paper's "-+" and "--" Viterbi states).
    """

    RISING = "rise"
    FALLING = "fall"
    HOLD_HIGH = "hold_high"
    HOLD_LOW = "hold_low"

    ALL: Tuple[str, ...] = (RISING, FALLING, HOLD_HIGH, HOLD_LOW)


@dataclass
class DetectedEdge:
    """A single edge extracted from the combined IQ signal (Section 3.1).

    ``position`` is the sample index at the centre of the transition and
    ``differential`` the complex IQ differential vector S(t+) - S(t-).
    """

    position: int
    differential: complex
    strength: float = 0.0

    def __post_init__(self) -> None:
        if self.position < 0:
            raise SignalError(f"edge position must be >= 0, got "
                              f"{self.position}")
        if self.strength == 0.0:
            self.strength = abs(self.differential)


@dataclass
class StreamHypothesis:
    """A (rate, offset) stream candidate from eye-pattern folding (§3.2)."""

    offset_samples: float
    period_samples: float
    score: float = 0.0
    edge_indices: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.period_samples <= 0:
            raise SignalError("stream period must be positive")
        if self.offset_samples < 0:
            raise SignalError("stream offset must be >= 0")

    def grid_positions(self, n_samples: int) -> np.ndarray:
        """Bit-boundary sample positions of this stream within a trace."""
        n_slots = int((n_samples - self.offset_samples)
                      // self.period_samples) + 1
        k = np.arange(max(n_slots, 0))
        positions = self.offset_samples + k * self.period_samples
        return positions[positions < n_samples]


@dataclass
class DecodedStream:
    """One decoded tag stream within an epoch."""

    bits: np.ndarray
    offset_samples: float
    period_samples: float
    bitrate_bps: float
    tag_id: Optional[int] = None
    collided: bool = False
    edge_vector: complex = 0j
    confidence: float = 1.0

    def __post_init__(self) -> None:
        self.bits = np.asarray(self.bits, dtype=np.int8)
        if self.bits.ndim != 1:
            raise SignalError("decoded bits must be a 1-D array")
        if not np.all((self.bits == 0) | (self.bits == 1)):
            raise SignalError("decoded bits must be 0/1")

    @property
    def n_bits(self) -> int:
        return int(self.bits.size)

    def payload_bits(self, preamble_bits: int = constants.PREAMBLE_BITS,
                     anchor_bits: int = 1) -> np.ndarray:
        """Bits after stripping the preamble and anchor header."""
        header = preamble_bits + anchor_bits
        return self.bits[header:]


@dataclass
class StreamFault:
    """One stream hypothesis the decoder abandoned mid-epoch.

    Expected decode failures (header gate, unresolvable collision) and
    unexpected exceptions alike are captured here instead of aborting
    the epoch: the remaining streams still decode, and the caller sees
    *which* grid hypothesis degraded and why.
    """

    offset_samples: float
    period_samples: float
    stage: str
    error_type: str
    message: str
    #: Colliders estimated on the failed grid (0 = not a collision).
    n_colliders: int = 0
    #: True for routine abandonments (junk hypotheses failing the
    #: header gate and the like) that do not signal data loss; False
    #: for genuine degradation — unresolvable collisions, unexpected
    #: exceptions caught by per-stream fault isolation.
    expected: bool = True


@dataclass
class EpochResult:
    """Everything the decoder recovered from one reader epoch."""

    streams: List[DecodedStream] = field(default_factory=list)
    n_edges_detected: int = 0
    n_collisions_detected: int = 0
    n_collisions_resolved: int = 0
    n_spurious_edges: int = 0
    duration_s: float = 0.0
    #: Wall-clock seconds spent in each pipeline stage ("edge", "fold",
    #: "extract", "detect", "separate", "viterbi", plus "total"), filled by
    #: :meth:`LFDecoder.decode_epoch` so throughput regressions are
    #: attributable to a stage rather than to the pipeline as a whole.
    stage_timings: Dict[str, float] = field(default_factory=dict)
    #: Warm-cache hit/miss counters per stage (``fold_hits``,
    #: ``fold_misses``, ``kmeans_hits``, ``kmeans_misses``,
    #: ``basis_hits``, ``basis_misses``), filled when the epoch was
    #: decoded through a :class:`repro.core.session.SessionDecoder`;
    #: empty for cold (stateless) decodes.
    cache_stats: Dict[str, int] = field(default_factory=dict)
    #: Fidelity-gate counters for the adaptive decode path (see
    #: :data:`repro.core.fidelity.FIDELITY_STAT_KEYS`): one
    #: (fast, escalation) pair per confidence gate plus the bound-based
    #: Lloyd run count, filled by :meth:`LFDecoder.decode_epoch`.  An
    #: all-zero dict under the default policy means the fast paths
    #: never fired — a perf regression the benchmark ceiling flags.
    fidelity_stats: Dict[str, int] = field(default_factory=dict)
    #: Position of this epoch within a batch decode (see
    #: :class:`repro.core.engine.BatchDecoder`); 0 for single decodes.
    epoch_index: int = 0
    #: Stream hypotheses abandoned mid-decode (per-stream fault
    #: isolation): each record names the grid, the stage that failed
    #: and the error, while the other streams of the epoch decoded on.
    degraded_streams: List[StreamFault] = field(default_factory=list)
    #: Trace-guard report for this epoch's capture (a
    #: :class:`repro.robustness.guard.TraceHealth`), set whenever the
    #: decoder's sanitize front-end ran; ``None`` when the guard was
    #: disabled.  A clean capture yields a report with ``verdict ==
    #: "clean"`` and an untouched trace.
    trace_health: Optional[object] = None
    #: Blind-equalizer report for this epoch (a
    #: :class:`repro.core.equalizer.EqualizerReport`), set whenever the
    #: opt-in equalizer pre-stage ran; ``None`` when the stage was
    #: disabled (the default).  ``applied`` is False when the channel
    #: read as flat and the capture passed through untouched.
    equalizer: Optional[object] = None

    @property
    def degraded(self) -> bool:
        """True when any part of this epoch decoded less than cleanly.

        Routine stream abandonments (``StreamFault.expected``) do not
        count — junk fold hypotheses failing the header gate are part
        of a healthy decode.
        """
        if any(not fault.expected for fault in self.degraded_streams):
            return True
        health = self.trace_health
        return health is not None and \
            getattr(health, "verdict", "clean") != "clean"

    @property
    def n_streams(self) -> int:
        return len(self.streams)

    def total_payload_bits(self) -> int:
        """Sum of payload bits across all decoded streams."""
        return int(sum(s.payload_bits().size for s in self.streams))

    def stream_by_tag(self, tag_id: int) -> Optional[DecodedStream]:
        """The decoded stream attributed to ``tag_id``, if any."""
        for stream in self.streams:
            if stream.tag_id == tag_id:
                return stream
        return None


@dataclass
class ThroughputReport:
    """Aggregate goodput accounting for one experiment run."""

    scheme: str
    n_tags: int
    bits_correct: int
    bits_sent: int
    elapsed_s: float
    per_tag_bits: Dict[int, int] = field(default_factory=dict)

    @property
    def throughput_bps(self) -> float:
        """Aggregate goodput in bits per second."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.bits_correct / self.elapsed_s

    @property
    def goodput_fraction(self) -> float:
        """Fraction of transmitted bits recovered correctly."""
        if self.bits_sent <= 0:
            return 0.0
        return self.bits_correct / self.bits_sent


def bits_from_string(text: str) -> np.ndarray:
    """Parse a bit string like ``"10110"`` into an int8 array."""
    if not text:
        raise ConfigurationError("bit string must not be empty")
    invalid = set(text) - {"0", "1"}
    if invalid:
        raise ConfigurationError(
            f"bit string may only contain 0/1, found {sorted(invalid)}")
    return np.frombuffer(text.encode("ascii"), dtype=np.uint8).astype(
        np.int8) - ord("0")


def bits_to_string(bits: Sequence[int]) -> str:
    """Render a bit array as a compact string."""
    arr = np.asarray(bits, dtype=np.int8)
    if arr.ndim != 1:
        raise ConfigurationError("bits must be 1-D")
    if not np.all((arr == 0) | (arr == 1)):
        raise ConfigurationError("bits must be 0/1")
    return "".join("1" if b else "0" for b in arr)
