"""Shared utilities: DSP helpers, RNG plumbing, statistics, serialization."""

from .dsp import (
    moving_average,
    windowed_means,
    find_peaks_above,
    fold_positions,
    nrz_levels_from_bits,
    bits_from_levels,
)
from .rng import make_rng, spawn_rngs, spawn_seed_sequences
from .timing import StageTimer, merge_timings
from .stats import (
    Gaussian2D,
    fit_gaussian_2d,
    wilson_interval,
    ber_from_bits,
)

__all__ = [
    "moving_average",
    "windowed_means",
    "find_peaks_above",
    "fold_positions",
    "nrz_levels_from_bits",
    "bits_from_levels",
    "make_rng",
    "spawn_rngs",
    "spawn_seed_sequences",
    "StageTimer",
    "merge_timings",
    "Gaussian2D",
    "fit_gaussian_2d",
    "wilson_interval",
    "ber_from_bits",
]
