"""Digital signal processing primitives used by the decoder.

These are deliberately simple, vectorized building blocks: windowed
means for the IQ differential of Section 3.1, peak finding for edge
extraction, and modular folding for the eye-pattern stream search of
Section 3.2.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def moving_average(signal: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge-replicated padding.

    Works on real or complex input and always returns an array the same
    length as the input.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    arr = np.asarray(signal)
    if arr.ndim != 1:
        raise ValueError("signal must be 1-D")
    if window == 1 or arr.size == 0:
        return arr.copy()
    window = min(window, arr.size)
    kernel = np.ones(window) / window
    left = window // 2
    right = window - 1 - left
    padded = np.concatenate([np.repeat(arr[:1], left), arr,
                             np.repeat(arr[-1:], right)])
    return np.convolve(padded, kernel, mode="valid")


def windowed_means(signal: np.ndarray, centers: np.ndarray,
                   pre_window: int, post_window: int,
                   guard: int) -> Tuple[np.ndarray, np.ndarray]:
    """Mean of ``signal`` just before and just after each centre index.

    For each centre c this computes the mean over
    ``[c - guard - pre_window, c - guard)`` and
    ``(c + guard, c + guard + post_window]``, clipped to the signal
    bounds.  This is the S(t-) / S(t+) averaging of Section 3.1, with
    ``guard`` excluding the edge transition itself.

    Returns ``(before, after)`` arrays aligned with ``centers``.
    """
    arr = np.asarray(signal)
    if arr.ndim != 1:
        raise ValueError("signal must be 1-D")
    if pre_window < 1 or post_window < 1:
        raise ValueError("windows must be >= 1")
    if guard < 0:
        raise ValueError("guard must be >= 0")
    centers = np.asarray(centers, dtype=np.int64)
    n = arr.size
    # Prefix sums make every window O(1); complex-safe.
    csum = np.concatenate([[0], np.cumsum(arr)])

    lo_b = np.clip(centers - guard - pre_window, 0, n)
    hi_b = np.clip(centers - guard, 0, n)
    lo_a = np.clip(centers + guard + 1, 0, n)
    hi_a = np.clip(centers + guard + 1 + post_window, 0, n)

    len_b = np.maximum(hi_b - lo_b, 1)
    len_a = np.maximum(hi_a - lo_a, 1)
    before = (csum[hi_b] - csum[lo_b]) / len_b
    after = (csum[hi_a] - csum[lo_a]) / len_a
    # Where the window collapsed entirely (edge at trace boundary), fall
    # back to the nearest sample so callers never see NaN.
    empty_b = hi_b <= lo_b
    empty_a = hi_a <= lo_a
    if np.any(empty_b):
        before = before.copy()
        before[empty_b] = arr[np.clip(centers[empty_b], 0, n - 1)]
    if np.any(empty_a):
        after = after.copy()
        after[empty_a] = arr[np.clip(centers[empty_a], 0, n - 1)]
    return before, after


def find_peaks_above(values: np.ndarray, threshold: float,
                     min_separation: int) -> np.ndarray:
    """Indices of local maxima above ``threshold``.

    Greedy non-maximum suppression: peaks are accepted in decreasing
    height order and any later candidate within ``min_separation``
    samples of an accepted peak is discarded.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError("values must be 1-D")
    if min_separation < 1:
        raise ValueError("min_separation must be >= 1")
    candidates = np.flatnonzero(arr > threshold)
    if candidates.size == 0:
        return candidates
    order = candidates[np.argsort(arr[candidates])[::-1]]
    accepted: List[int] = []
    taken = np.zeros(arr.size, dtype=bool)
    for idx in order:
        if taken[idx]:
            continue
        accepted.append(int(idx))
        lo = max(0, idx - min_separation)
        hi = min(arr.size, idx + min_separation + 1)
        taken[lo:hi] = True
    return np.array(sorted(accepted), dtype=np.int64)


def fold_positions(positions: np.ndarray, period: float,
                   n_bins: int) -> np.ndarray:
    """Histogram of ``positions`` modulo ``period`` into ``n_bins`` bins.

    This is the eye-pattern fold of Section 3.2: edges belonging to a
    stream with this period pile into one bin; noise spreads uniformly.
    """
    if period <= 0:
        raise ValueError("period must be positive")
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    pos = np.asarray(positions, dtype=np.float64)
    phases = np.mod(pos, period) / period  # in [0, 1)
    bins = np.minimum((phases * n_bins).astype(np.int64), n_bins - 1)
    return np.bincount(bins, minlength=n_bins)


def nrz_levels_from_bits(bits: np.ndarray) -> np.ndarray:
    """Map a bit sequence to NRZ antenna states (identity for ASK OOK).

    The tag reflects (state 1) for a one bit and detunes (state 0) for a
    zero bit; edges appear wherever consecutive bits differ.
    """
    arr = np.asarray(bits, dtype=np.int8)
    if not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bits must be 0/1")
    return arr.astype(np.float64)


def bits_from_levels(levels: np.ndarray, threshold: float = 0.5) -> np.ndarray:
    """Inverse of :func:`nrz_levels_from_bits` with a decision threshold."""
    arr = np.asarray(levels, dtype=np.float64)
    return (arr > threshold).astype(np.int8)


def edge_positions_from_bits(bits: Sequence[int], offset: float,
                             period: float,
                             initial_state: int = 0) -> np.ndarray:
    """Sample positions where an NRZ bit sequence toggles the antenna.

    The transmission starts from ``initial_state`` (antenna detuned by
    default); bit k occupies ``[offset + k*period, offset + (k+1)*period)``
    and an edge occurs at the bit boundary whenever the level changes.
    """
    arr = np.asarray(bits, dtype=np.int8)
    levels = np.concatenate([[initial_state], arr])
    toggles = np.flatnonzero(np.diff(levels) != 0)
    return offset + toggles * period
