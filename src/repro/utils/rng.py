"""Deterministic random-number plumbing.

Every stochastic component in the simulator accepts either a seed or a
``numpy.random.Generator``.  Centralizing the conversion here keeps all
experiments reproducible from a single integer seed.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a Generator from a seed, an existing Generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seed_sequences(seed: SeedLike,
                         n: int) -> List[np.random.SeedSequence]:
    """Derive ``n`` independent, picklable seed sequences from a seed.

    The batch-decode engine ships one sequence per decode task to its
    worker processes, so results depend only on the root seed and the
    task index — never on how many workers ran or which worker picked
    up which task.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} seed sequences")
    if isinstance(seed, np.random.Generator):
        # Derive a root entropy value from the generator's stream.
        return np.random.SeedSequence(
            int(seed.integers(0, 2 ** 63))).spawn(n)
    return np.random.SeedSequence(seed).spawn(n)


def iter_spawn_seed_sequences(seed: SeedLike
                              ) -> Iterator[np.random.SeedSequence]:
    """Lazily yield the same children ``spawn_seed_sequences`` returns.

    ``SeedSequence.spawn`` derives each child from the spawn *index*
    alone, so drawing children one at a time produces exactly the
    sequence a single up-front ``spawn(n)`` would — letting a streaming
    consumer (the batch engine's sliding submission window) seed an
    unbounded task stream without knowing its length in advance.
    """
    if isinstance(seed, np.random.Generator):
        root = np.random.SeedSequence(int(seed.integers(0, 2 ** 63)))
    else:
        root = np.random.SeedSequence(seed)
    while True:
        yield root.spawn(1)[0]


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Used to give each simulated tag its own stream so adding or removing
    a tag does not perturb the randomness of the others.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    root = make_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(n)] \
        if hasattr(root.bit_generator, "seed_seq") and root.bit_generator.seed_seq is not None \
        else [np.random.default_rng(root.integers(0, 2**63)) for _ in range(n)]
