"""Persistence helpers for IQ traces and experiment results.

Traces are stored as ``.npz`` (compact, lossless complex arrays) and
experiment result dictionaries as JSON, so recorded captures can be fed
back through the decoder offline — the same workflow one would use with
real USRP recordings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from ..errors import SignalError
from ..types import IQTrace

PathLike = Union[str, Path]

_TRACE_FORMAT_VERSION = 1


def save_trace(trace: IQTrace, path: PathLike) -> Path:
    """Write an :class:`IQTrace` to ``path`` as a compressed npz file."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        out,
        version=np.int64(_TRACE_FORMAT_VERSION),
        samples=trace.samples,
        sample_rate_hz=np.float64(trace.sample_rate_hz),
        start_time_s=np.float64(trace.start_time_s),
    )
    # np.savez appends .npz when missing; normalize the returned path.
    if out.suffix != ".npz":
        out = out.with_suffix(out.suffix + ".npz")
    return out


def load_trace(path: PathLike) -> IQTrace:
    """Load an :class:`IQTrace` previously written by :func:`save_trace`."""
    with np.load(Path(path)) as data:
        missing = {"samples", "sample_rate_hz"} - set(data.files)
        if missing:
            raise SignalError(
                f"trace file {path} is missing fields: {sorted(missing)}")
        version = int(data["version"]) if "version" in data.files else 1
        if version > _TRACE_FORMAT_VERSION:
            raise SignalError(
                f"trace file {path} has format version {version}, newer "
                f"than supported {_TRACE_FORMAT_VERSION}")
        start = float(data["start_time_s"]) if "start_time_s" in data.files \
            else 0.0
        # Recorded captures are exactly where front-end glitches live;
        # defer finiteness to the decoder's trace guard (which repairs
        # or rejects with diagnostics) instead of refusing the file.
        return IQTrace(
            samples=np.asarray(data["samples"], dtype=np.complex128),
            sample_rate_hz=float(data["sample_rate_hz"]),
            start_time_s=start,
            allow_nonfinite=True,
        )


class _ResultEncoder(json.JSONEncoder):
    """JSON encoder that understands numpy scalars and arrays."""

    def default(self, o: Any) -> Any:
        if isinstance(o, (np.integer,)):
            return int(o)
        if isinstance(o, (np.floating,)):
            return float(o)
        if isinstance(o, np.ndarray):
            return o.tolist()
        if isinstance(o, complex):
            return {"__complex__": True, "real": o.real, "imag": o.imag}
        return super().default(o)


def _decode_complex(obj: Dict[str, Any]) -> Any:
    if obj.get("__complex__"):
        return complex(obj["real"], obj["imag"])
    return obj


def save_results(results: Dict[str, Any], path: PathLike) -> Path:
    """Write an experiment-result dictionary as pretty-printed JSON."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(results, cls=_ResultEncoder, indent=2,
                              sort_keys=True) + "\n")
    return out


def load_results(path: PathLike) -> Dict[str, Any]:
    """Load a result dictionary written by :func:`save_results`."""
    return json.loads(Path(path).read_text(), object_hook=_decode_complex)
