"""Statistics helpers: 2-D Gaussian fits, BER accounting, intervals.

The Viterbi stage (Section 3.5) models IQ emission likelihoods as a
bivariate normal fitted to empirically observed differentials; the
evaluation modules need BER computation and binomial confidence
intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Gaussian2D:
    """Bivariate normal over the IQ plane: (V_i, V_q) ~ N(mu, sigma, r).

    Mirrors the paper's emission model
    ``(Vi, Vq) ~ N(mu_i, mu_q, sigma_i, sigma_q, r)`` (Section 3.5).
    """

    mu_i: float
    mu_q: float
    sigma_i: float
    sigma_q: float
    rho: float = 0.0

    def __post_init__(self) -> None:
        if self.sigma_i <= 0 or self.sigma_q <= 0:
            raise ValueError("sigmas must be positive")
        if not -1.0 < self.rho < 1.0:
            raise ValueError(f"correlation must be in (-1, 1), got {self.rho}")

    def log_pdf(self, points: np.ndarray) -> np.ndarray:
        """Log density at complex ``points`` (I = real, Q = imag)."""
        pts = np.asarray(points, dtype=np.complex128)
        zi = (pts.real - self.mu_i) / self.sigma_i
        zq = (pts.imag - self.mu_q) / self.sigma_q
        one_m_r2 = 1.0 - self.rho ** 2
        quad = (zi ** 2 - 2.0 * self.rho * zi * zq + zq ** 2) / one_m_r2
        log_norm = -math.log(2.0 * math.pi * self.sigma_i * self.sigma_q
                             * math.sqrt(one_m_r2))
        return log_norm - 0.5 * quad

    @property
    def mean(self) -> complex:
        return complex(self.mu_i, self.mu_q)


def fit_gaussian_2d(points: np.ndarray,
                    min_sigma: float = 1e-9) -> Gaussian2D:
    """Fit a :class:`Gaussian2D` to complex IQ samples.

    ``min_sigma`` floors the marginal deviations so degenerate clusters
    (e.g. a single point) still yield a usable emission model.
    """
    pts = np.asarray(points, dtype=np.complex128).ravel()
    if pts.size == 0:
        raise ValueError("cannot fit a Gaussian to zero points")
    i, q = pts.real, pts.imag
    mu_i, mu_q = float(np.mean(i)), float(np.mean(q))
    sigma_i = max(float(np.std(i)), min_sigma)
    sigma_q = max(float(np.std(q)), min_sigma)
    if pts.size > 1 and sigma_i > min_sigma and sigma_q > min_sigma:
        rho = float(np.mean((i - mu_i) * (q - mu_q)) / (sigma_i * sigma_q))
        rho = float(np.clip(rho, -0.999, 0.999))
    else:
        rho = 0.0
    return Gaussian2D(mu_i, mu_q, sigma_i, sigma_q, rho)


def ber_from_bits(sent: Sequence[int], received: Sequence[int]) -> float:
    """Bit error rate between two sequences, compared over the overlap.

    Missing bits at the end of ``received`` (e.g. a truncated decode)
    count as errors, matching how the evaluation would score a real
    capture.
    """
    tx = np.asarray(sent, dtype=np.int8)
    rx = np.asarray(received, dtype=np.int8)
    if tx.size == 0:
        raise ValueError("sent bits must not be empty")
    overlap = min(tx.size, rx.size)
    errors = int(np.count_nonzero(tx[:overlap] != rx[:overlap]))
    errors += max(tx.size - rx.size, 0)
    return errors / tx.size


def wilson_interval(successes: int, trials: int,
                    z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    p = successes / trials
    denom = 1.0 + z ** 2 / trials
    center = (p + z ** 2 / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials
                                   + z ** 2 / (4 * trials ** 2))
    return max(0.0, center - half), min(1.0, center + half)


def db_to_linear(db: float) -> float:
    """Convert a dB power ratio to linear."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB."""
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)
