"""Lightweight per-stage wall-clock accounting for the decoder.

The pipeline wraps each stage's hot call sites in
``with timer.stage("edge"): ...`` blocks; repeated entries into the
same stage accumulate, so a stage that runs once per stream hypothesis
still reports a single total.  The timer is deliberately dumb — no
nesting bookkeeping — because the pipeline only wraps leaf calls.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator


class StageTimer:
    """Accumulates wall-clock seconds per named stage."""

    def __init__(self) -> None:
        self._elapsed: Dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a block and add it to ``name``'s running total."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._elapsed[name] = (self._elapsed.get(name, 0.0)
                                   + time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        """Fold an externally measured duration into a stage."""
        self._elapsed[name] = self._elapsed.get(name, 0.0) + seconds

    @property
    def timings(self) -> Dict[str, float]:
        """Snapshot of accumulated seconds per stage."""
        return dict(self._elapsed)


def merge_timings(into: Dict[str, float],
                  update: Dict[str, float]) -> Dict[str, float]:
    """Accumulate one timing dict into another (returns ``into``)."""
    for name, seconds in update.items():
        into[name] = into.get(name, 0.0) + seconds
    return into
