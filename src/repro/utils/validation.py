"""Small argument-validation helpers shared across modules."""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError


def require_positive(name: str, value: float) -> float:
    """Return ``value`` or raise ConfigurationError if it is not > 0."""
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Return ``value`` or raise ConfigurationError if it is < 0."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return value


def require_in_range(name: str, value: float, low: float, high: float,
                     inclusive: bool = True) -> float:
    """Return ``value`` or raise unless it lies within [low, high]."""
    ok = low <= value <= high if inclusive else low < value < high
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ConfigurationError(
            f"{name} must be in {bracket[0]}{low}, {high}{bracket[1]}, "
            f"got {value}")
    return value


def require_int(name: str, value: float,
                minimum: Optional[int] = None) -> int:
    """Coerce ``value`` to int, raising if it is fractional or too small."""
    as_int = int(round(value))
    if abs(value - as_int) > 1e-9:
        raise ConfigurationError(f"{name} must be an integer, got {value}")
    if minimum is not None and as_int < minimum:
        raise ConfigurationError(
            f"{name} must be >= {minimum}, got {as_int}")
    return as_int
