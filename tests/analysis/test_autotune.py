"""Decoder auto-tuner: knob plumbing, descent invariants, families."""

import pytest

from repro.analysis.autotune import (DEFAULT_KNOBS, Knob, TuneResult,
                                     autotune, build_decoder_config,
                                     default_params,
                                     scenario_families)
from repro.core.fidelity import FidelityPolicy
from repro.core.pipeline import LFDecoderConfig
from repro.errors import ConfigurationError
from repro.types import SimulationProfile

QUICK_KNOBS = (Knob("min_header_score", (0.6, 0.75)),
               Knob("collision_guard_extra", (1, 3)))


class TestKnobRegistry:
    def test_defaults_match_stock_configs(self):
        params = default_params(DEFAULT_KNOBS)
        assert params["min_header_score"] == \
            LFDecoderConfig.__dataclass_fields__[
                "min_header_score"].default
        assert params["fidelity.pregate_margin"] == \
            FidelityPolicy.__dataclass_fields__[
                "pregate_margin"].default

    def test_every_default_knob_builds_a_config(self):
        prof = SimulationProfile.fast()
        for knob in DEFAULT_KNOBS:
            for value in knob.values:
                params = default_params(DEFAULT_KNOBS)
                params[knob.name] = value
                config = build_decoder_config(params, [10e3], prof)
                assert isinstance(config, LFDecoderConfig)

    def test_nested_knobs_reach_sub_configs(self):
        prof = SimulationProfile.fast()
        params = default_params(DEFAULT_KNOBS)
        params["fidelity.pregate_margin"] = 0.25
        params["equalizer.noise_regularization"] = 0.05
        params["guard.max_interp_gap"] = 32
        config = build_decoder_config(params, [10e3], prof)
        assert config.fidelity.pregate_margin == 0.25
        assert config.equalizer_config.noise_regularization == 0.05
        assert config.guard_config.max_interp_gap == 32

    def test_unknown_knob_rejected(self):
        with pytest.raises(ConfigurationError):
            default_params((Knob("no_such_field", (1,)),))
        with pytest.raises(ConfigurationError):
            default_params((Knob("nowhere.field", (1,)),))


class TestScenarioFamilies:
    def test_families_are_pinned_and_distinct(self):
        families = scenario_families()
        assert set(families) == {"low_snr", "dense",
                                 "multipath_room", "drift_heavy"}
        seeds = [spec.seed for specs in families.values()
                 for spec in specs]
        assert len(seeds) == len(set(seeds))


class TestAutotune:
    @pytest.fixture(scope="class")
    def result(self):
        return autotune("low_snr", knobs=QUICK_KNOBS, rounds=1,
                        seed=4242)

    def test_never_worse_than_stock(self, result):
        assert result.best_score >= result.baseline_score
        assert result.improved == \
            (result.best_score > result.baseline_score)

    def test_changed_params_stay_in_registry(self, result):
        allowed = {k.name: set(k.values) for k in QUICK_KNOBS}
        for name, value in result.changed_params.items():
            assert value in allowed[name]

    def test_deterministic(self, result):
        again = autotune("low_snr", knobs=QUICK_KNOBS, rounds=1,
                         seed=4242)
        assert again.best_score == result.best_score
        assert again.best_params == result.best_params
        assert again.history == result.history

    def test_as_dict_is_json_shaped(self, result):
        import json
        payload = json.loads(json.dumps(result.as_dict()))
        assert payload["family"] == "low_snr"
        assert isinstance(payload["improved"], bool)

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            autotune("underwater", knobs=QUICK_KNOBS)

    def test_zero_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            autotune("low_snr", knobs=QUICK_KNOBS, rounds=0)
