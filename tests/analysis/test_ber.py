"""Tests for the Figure 14 BER machinery."""

import pytest

from repro.analysis.ber import (BerPoint, ber_sweep, fitted_ber_curve,
                                genie_lf_decode, snr_gap_db)
from repro.errors import ConfigurationError
from repro.types import SimulationProfile


class TestBerSweep:
    def test_ask_monotone_waterfall(self):
        points = ber_sweep([4.0, 8.0, 12.0], decoder="ask",
                           n_bits=200, n_trials=2,
                           profile=SimulationProfile.fast(), rng=0)
        bers = [p.ber for p in points]
        assert bers[0] > bers[-1]
        assert bers[-1] < 0.05

    def test_lf_worse_than_ask(self):
        """The core Figure 14 ordering: edge decoding needs more SNR."""
        profile = SimulationProfile.fast()
        snrs = [5.0, 9.0]
        lf = ber_sweep(snrs, decoder="lf", n_bits=300, n_trials=2,
                       profile=profile, rng=1)
        ask = ber_sweep(snrs, decoder="ask", n_bits=300, n_trials=2,
                        profile=profile, rng=1)
        for lf_p, ask_p in zip(lf, ask):
            assert lf_p.ber >= ask_p.ber * 0.8

    def test_high_snr_near_zero(self):
        points = ber_sweep([18.0], decoder="lf", n_bits=200,
                           n_trials=2,
                           profile=SimulationProfile.fast(), rng=2)
        assert points[0].ber < 0.02

    def test_genie_decode_clean(self):
        from repro.analysis.ber import _single_tag_capture
        import numpy as np
        profile = SimulationProfile.fast()
        gen = np.random.default_rng(3)
        capture = _single_tag_capture(20.0, 100, profile,
                                      0.1 + 0.04j, gen)
        truth = capture.truths[0]
        bits = genie_lf_decode(capture.trace, truth.offset_samples,
                               truth.period_samples, truth.n_bits)
        errors = np.count_nonzero(bits[:truth.n_bits] != truth.bits)
        assert errors == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ber_sweep([5.0], decoder="fsk")
        with pytest.raises(ConfigurationError):
            ber_sweep([5.0], n_bits=5)


class TestCurveFit:
    def _points(self, pairs):
        return [BerPoint(snr_db=s, ber=b, bits_measured=1000)
                for s, b in pairs]

    def test_fit_recovers_slope(self):
        # log10(ber) = -0.5 - 0.2 * snr
        points = self._points([(s, 10 ** (-0.5 - 0.2 * s))
                               for s in (5, 7, 9, 11)])
        fit = fitted_ber_curve(points)
        assert fit["slope"] == pytest.approx(-0.2, abs=0.01)
        assert fit["intercept"] == pytest.approx(-0.5, abs=0.05)

    def test_saturated_points_excluded(self):
        points = self._points([(1, 0.5), (5, 0.1), (7, 0.04),
                               (9, 0.015)])
        fit = fitted_ber_curve(points)
        # The 0.5 point must not drag the slope.
        assert fit["slope"] < -0.1

    def test_needs_two_points(self):
        with pytest.raises(ConfigurationError):
            fitted_ber_curve(self._points([(5, 0.1)]))

    def test_gap_computation(self):
        lf = self._points([(s, 10 ** (-0.2 * (s - 4))) for s in
                           (6, 8, 10, 12)])
        ask = self._points([(s, 10 ** (-0.2 * s)) for s in
                            (6, 8, 10, 12)])
        gap = snr_gap_db(lf, ask)
        assert gap == pytest.approx(4.0, abs=0.2)

    def test_gap_validation(self):
        pts = self._points([(5, 0.1), (7, 0.05)])
        with pytest.raises(ConfigurationError):
            snr_gap_db(pts, pts, target_ber=2.0)
