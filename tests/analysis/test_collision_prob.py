"""Tests for the Section 3.3 collision-probability model."""

import pytest

from repro.analysis.collision_prob import (
    collision_probability, collision_probability_at_least,
    collision_probability_mc)
from repro.errors import ConfigurationError


class TestAnalytic:
    def test_paper_two_way_value(self):
        """16 nodes at 100 kbps: P(2-way) ~ 0.189 (Section 3.3)."""
        p = collision_probability(16, 2)
        assert p == pytest.approx(0.189, abs=0.02)

    def test_paper_three_way_value(self):
        p = collision_probability(16, 3)
        assert p == pytest.approx(0.0181, abs=0.008)

    def test_probabilities_sum_to_one(self):
        total = sum(collision_probability(16, k)
                    for k in range(1, 17))
        assert total == pytest.approx(1.0)

    def test_lower_rate_reduces_collisions(self):
        fast = collision_probability(16, 2, bitrate_bps=100e3)
        slow = collision_probability(16, 2, bitrate_bps=10e3)
        assert slow < fast / 5

    def test_toggle_probability_scales(self):
        full = collision_probability(16, 2, toggle_probability=1.0)
        half = collision_probability(16, 2, toggle_probability=0.5)
        assert half < full

    def test_at_least(self):
        exactly = sum(collision_probability(16, k) for k in (3, 4, 5))
        at_least = collision_probability_at_least(16, 3)
        assert at_least >= exactly
        assert at_least == pytest.approx(
            1.0 - collision_probability(16, 1)
            - collision_probability(16, 2))

    def test_200_node_slow_rate_claim(self):
        """Section 3.3: 3-or-more-way collisions stay rare at 10 kbps
        even with 200 nodes."""
        p = collision_probability_at_least(
            200, 3, bitrate_bps=10e3, toggle_probability=0.5,
            window=3)
        assert p < 0.01

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            collision_probability(0, 1)
        with pytest.raises(ConfigurationError):
            collision_probability(4, 5)
        with pytest.raises(ConfigurationError):
            collision_probability(4, 2, window=0)
        with pytest.raises(ConfigurationError):
            collision_probability(4, 2, toggle_probability=0.0)


class TestMonteCarlo:
    def test_agrees_with_analytic(self):
        analytic = collision_probability(16, 2)
        mc = collision_probability_mc(16, 2, n_trials=20_000, rng=0)
        assert mc == pytest.approx(analytic, abs=0.02)

    def test_no_collision_case(self):
        analytic = collision_probability(16, 1)
        mc = collision_probability_mc(16, 1, n_trials=10_000, rng=1)
        assert mc == pytest.approx(analytic, abs=0.03)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            collision_probability_mc(4, 2, n_trials=0)
