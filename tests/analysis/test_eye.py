"""Eye-diagram metrics: discrimination, genie timing, edge cases."""

import numpy as np
import pytest

from repro.analysis.eye import (EyeMetrics, eye_metrics, eye_summary,
                                tag_eye_metrics)
from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioSpec, ScenarioSynth


def _capture(**kwargs):
    defaults = dict(name="eye_test", n_tags=4, bitrate_bps=10e3,
                    seed=7)
    defaults.update(kwargs)
    return ScenarioSynth(ScenarioSpec(**defaults)).capture(0.012)


class TestEyeMetrics:
    def test_per_tag_coverage(self):
        capture = _capture(snr_db=15.0)
        metrics = eye_metrics(capture)
        assert [m.tag_id for m in metrics] == \
            [t.tag_id for t in capture.truths]
        for m in metrics:
            assert m.n_transitions > 0
            assert m.n_transitions <= m.n_boundaries
            assert 0.0 <= m.matched_fraction <= 1.0

    def test_opening_discriminates_snr(self):
        clean = eye_summary(eye_metrics(_capture(snr_db=15.0)))
        noisy = eye_summary(eye_metrics(_capture(snr_db=2.0)))
        assert clean["min_opening"] > noisy["min_opening"]
        assert clean["min_opening"] > 0.5

    def test_clean_eye_is_open_with_small_jitter(self):
        summary = eye_summary(eye_metrics(_capture(snr_db=15.0)))
        assert summary["mean_opening"] > 0.8
        assert summary["max_jitter_samples"] < 5.0
        assert summary["max_crossing_spread_samples"] < 20.0

    def test_deterministic(self):
        a = eye_metrics(_capture(snr_db=10.0))
        b = eye_metrics(_capture(snr_db=10.0))
        assert a == b

    def test_single_tag_matches_every_transition(self):
        capture = _capture(n_tags=1, snr_db=15.0)
        (m,) = eye_metrics(capture)
        assert m.matched_fraction == 1.0
        assert m.jitter_samples < 2.0

    def test_unmatched_tag_reports_infinite_jitter(self):
        capture = _capture(n_tags=1, snr_db=15.0)
        truth = capture.truths[0]
        m = tag_eye_metrics(capture, truth,
                            detected_positions=np.array([],
                                                        dtype=np.int64))
        assert m.matched_fraction == 0.0
        assert np.isinf(m.jitter_samples)
        # Summary turns the unmeasurable jitter into None, not inf.
        summary = eye_summary([m])
        assert summary["max_jitter_samples"] is None

    def test_empty_capture_rejected(self):
        capture = _capture(n_tags=1)
        capture.truths.clear()
        with pytest.raises(ConfigurationError):
            eye_metrics(capture)

    def test_empty_summary_rejected(self):
        with pytest.raises(ConfigurationError):
            eye_summary([])
