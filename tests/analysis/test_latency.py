"""Tests for CRC-5 and LF identification latency."""

import numpy as np
import pytest

from repro.analysis.latency import (LFIdentification, append_crc5,
                                    check_crc5, crc5,
                                    lf_identification_time_s)
from repro.errors import ConfigurationError
from repro.types import SimulationProfile


class TestCrc5:
    def test_length(self):
        assert crc5(np.ones(96, dtype=np.int8)).size == 5

    def test_round_trip(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            msg = rng.integers(0, 2, 96).astype(np.int8)
            assert check_crc5(append_crc5(msg))

    def test_detects_single_bit_errors(self):
        rng = np.random.default_rng(1)
        msg = rng.integers(0, 2, 96).astype(np.int8)
        frame = append_crc5(msg)
        for pos in range(0, frame.size, 7):
            bad = frame.copy()
            bad[pos] ^= 1
            assert not check_crc5(bad)

    def test_burst_detection_mostly_works(self):
        """CRC-5 catches all burst errors up to its width."""
        rng = np.random.default_rng(2)
        msg = rng.integers(0, 2, 96).astype(np.int8)
        frame = append_crc5(msg)
        for start in range(0, 60, 11):
            bad = frame.copy()
            bad[start:start + 4] ^= 1
            assert not check_crc5(bad)

    def test_deterministic(self):
        msg = np.ones(10, dtype=np.int8)
        np.testing.assert_array_equal(crc5(msg), crc5(msg))

    def test_short_frame_rejected(self):
        assert not check_crc5(np.ones(4, dtype=np.int8))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            crc5(np.empty(0, dtype=np.int8))


class TestLFIdentification:
    def test_small_inventory_completes(self):
        ident = LFIdentification(3, profile=SimulationProfile.fast(),
                                 rng=0)
        result = ident.run()
        assert result.complete
        assert result.epochs_used <= 4
        assert result.elapsed_s > 0

    def test_identifiers_unique_per_tag(self):
        ident = LFIdentification(4, profile=SimulationProfile.fast(),
                                 rng=1)
        ids = [tuple(v) for v in ident.identifiers.values()]
        assert len(set(ids)) == 4

    def test_epoch_duration_fits_frame(self):
        ident = LFIdentification(2, profile=SimulationProfile.fast(),
                                 rng=2)
        frame_bits = 8 + 1 + 96 + 5
        assert ident.epoch_duration_s() > frame_bits / 10e3

    def test_mean_time_helper(self):
        t = lf_identification_time_s(
            2, n_trials=2, profile=SimulationProfile.fast(), rng=3)
        assert t > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LFIdentification(0)
        with pytest.raises(ConfigurationError):
            LFIdentification(2, max_epochs=0)
