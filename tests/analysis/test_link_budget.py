"""Tests for the Section 5.4 range analysis."""

import pytest

from repro.analysis.link_budget import (max_range_m, range_equivalents,
                                        range_table, snr_at_range)
from repro.errors import ConfigurationError
from repro.phy.antenna import LinkBudget


class TestRangeEquivalents:
    def test_paper_pairs(self):
        pairs = range_equivalents([10.0, 30.0], snr_gap_db=4.0)
        assert pairs[0].lf_range_ft == pytest.approx(7.94, abs=0.1)
        assert pairs[1].lf_range_ft == pytest.approx(23.8, abs=0.2)

    def test_ratio_constant(self):
        pairs = range_equivalents([10.0, 20.0, 30.0], snr_gap_db=4.0)
        ratios = {round(p.ratio, 6) for p in pairs}
        assert len(ratios) == 1

    def test_paper_811_value_implies_gap_below_4(self):
        """The paper quotes 8.1 ft for 10 ft, consistent with a gap of
        ~3.7 dB — our measured ~3 dB gap maps to a slightly larger
        range."""
        pairs = range_equivalents([10.0], snr_gap_db=3.0)
        assert pairs[0].lf_range_ft > 8.1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            range_equivalents([10.0], snr_gap_db=-1.0)


class TestAbsoluteRanges:
    def test_snr_decreases_with_distance(self):
        budget = LinkBudget()
        assert snr_at_range(budget, 2.0) > snr_at_range(budget, 4.0)

    def test_max_range_consistent_with_snr(self):
        budget = LinkBudget()
        required = 12.0
        r = max_range_m(budget, required)
        assert snr_at_range(budget, r) == pytest.approx(required,
                                                        abs=0.01)

    def test_range_table_ratio_matches_d4_law(self):
        budget = LinkBudget()
        table = range_table(budget, required_snr_ask_db=10.0,
                            snr_gap_db=4.0)
        assert table["ratio"] == pytest.approx(10 ** (-4.0 / 40),
                                               rel=1e-6)
        assert table["lf_range_m"] < table["ask_range_m"]
