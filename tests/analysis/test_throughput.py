"""Tests for stream-truth matching and throughput accounting."""

import numpy as np
import pytest

from repro.analysis.throughput import (lf_throughput_sweep,
                                       match_streams, run_lf_epochs,
                                       score_epoch)
from repro.reader.epoch import EpochCapture, TagTruth
from repro.types import DecodedStream, EpochResult, IQTrace
from repro.types import SimulationProfile


def _truth(tag_id, bits, offset):
    return TagTruth(tag_id=tag_id,
                    bits=np.asarray(bits, dtype=np.int8),
                    offset_samples=offset, period_samples=250.0,
                    nominal_bitrate_bps=10e3, coefficient=0.1)


def _stream(bits, offset, period=250.0):
    return DecodedStream(bits=np.asarray(bits, dtype=np.int8),
                         offset_samples=offset, period_samples=period,
                         bitrate_bps=10e3)


def _capture(truths):
    trace = IQTrace(samples=np.ones(30_000, dtype=complex),
                    sample_rate_hz=2.5e6)
    return EpochCapture(trace=trace, truths=truths)


class TestMatchStreams:
    def test_exact_match(self):
        bits = [1, 0, 1, 1]
        capture = _capture([_truth(0, bits, 100.0)])
        result = EpochResult(streams=[_stream(bits, 101.0)])
        matches = match_streams(capture, result)
        assert matches[0].matched
        assert matches[0].bit_errors == 0

    def test_unmatched_truth_counts_all_errors(self):
        capture = _capture([_truth(0, [1, 0, 1], 100.0)])
        result = EpochResult(streams=[])
        matches = match_streams(capture, result)
        assert not matches[0].matched
        assert matches[0].bit_errors == 3

    def test_offset_tolerance_enforced(self):
        capture = _capture([_truth(0, [1, 0, 1], 100.0)])
        result = EpochResult(streams=[_stream([1, 0, 1], 5000.0)])
        matches = match_streams(capture, result)
        assert not matches[0].matched

    def test_rate_mismatch_rejected(self):
        capture = _capture([_truth(0, [1, 0, 1], 100.0)])
        result = EpochResult(streams=[_stream([1, 0, 1], 100.0,
                                              period=500.0)])
        matches = match_streams(capture, result)
        assert not matches[0].matched

    def test_optimal_assignment_over_greedy(self):
        """Two truths at near-identical offsets must each get the
        stream whose bits match theirs."""
        bits_a = [1, 0, 1, 0, 1, 0, 1, 0]
        bits_b = [1, 1, 0, 0, 1, 1, 0, 0]
        capture = _capture([_truth(0, bits_a, 100.0),
                            _truth(1, bits_b, 102.0)])
        result = EpochResult(streams=[_stream(bits_b, 101.0),
                                      _stream(bits_a, 101.0)])
        matches = match_streams(capture, result)
        total_errors = sum(m.bit_errors for m in matches)
        assert total_errors == 0

    def test_short_stream_missing_bits_count(self):
        capture = _capture([_truth(0, [1, 0, 1, 1], 100.0)])
        result = EpochResult(streams=[_stream([1, 0], 100.0)])
        matches = match_streams(capture, result)
        assert matches[0].bit_errors == 2

    def test_empty_capture(self):
        capture = _capture([])
        assert match_streams(capture, EpochResult()) == []


class TestScoreEpoch:
    def test_report_fields(self):
        bits = [1, 0, 1, 1]
        capture = _capture([_truth(0, bits, 100.0)])
        result = EpochResult(streams=[_stream(bits, 100.0)])
        report = score_epoch(capture, result)
        assert report.bits_sent == 4
        assert report.bits_correct == 4
        assert report.n_tags == 1
        assert report.elapsed_s == pytest.approx(30_000 / 2.5e6)


class TestRunLfEpochs:
    def test_end_to_end_goodput(self):
        profile = SimulationProfile.fast()
        run = run_lf_epochs(2, 10e3, n_epochs=2,
                            epoch_duration_s=0.008,
                            profile=profile, rng=0)
        assert run.goodput_fraction > 0.9
        assert run.throughput_bps > 0.9 * 2 * 10e3 * \
            run.goodput_fraction * 0.5

    def test_sweep_keys(self):
        profile = SimulationProfile.fast()
        sweep = lf_throughput_sweep([1, 2], 10e3, n_epochs=1,
                                    epoch_duration_s=0.008,
                                    profile=profile, rng=1)
        assert set(sweep) == {1, 2}
