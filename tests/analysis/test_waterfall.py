"""BER waterfall and capacity surface: shape, determinism, guards."""

import pytest

from repro.analysis.waterfall import ber_waterfall, capacity_surface
from repro.errors import ConfigurationError


class TestBerWaterfall:
    @pytest.fixture(scope="class")
    def waterfall(self):
        return ber_waterfall([6.0, 10.0, 14.0], n_bits=150,
                             n_trials=2, seed=14)

    def test_row_shape(self, waterfall):
        rows = waterfall["rows"]
        assert [r["snr_db"] for r in rows] == [6.0, 10.0, 14.0]
        for row in rows:
            assert 0.0 <= row["lf_ber"] <= 1.0
            assert 0.0 <= row["ask_ber"] <= 1.0
            assert row["bits_measured"] > 0

    def test_fig14_snr_gap_shape(self, waterfall):
        """LF needs more SNR than ASK, and BER falls with SNR."""
        rows = waterfall["rows"]
        assert rows[0]["lf_ber"] >= rows[0]["ask_ber"]
        assert rows[-1]["lf_ber"] <= rows[0]["lf_ber"]
        assert rows[-1]["ask_ber"] <= rows[0]["ask_ber"]
        gap = waterfall["snr_gap_db"]
        if gap is not None:
            assert 1.0 < gap < 10.0

    def test_deterministic(self, waterfall):
        again = ber_waterfall([6.0, 10.0, 14.0], n_bits=150,
                              n_trials=2, seed=14)
        assert again == waterfall

    def test_empty_snr_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            ber_waterfall([])


class TestCapacitySurface:
    @pytest.fixture(scope="class")
    def surface(self):
        return capacity_surface([8.0, 15.0], [2, 4], [150.0, 16000.0],
                                bitrate_bps=10e3, n_trials=1,
                                epoch_s=0.01, seed=520)

    def test_grid_coverage(self, surface):
        coords = {(r["snr_db"], r["n_tags"], r["drift_ppm"])
                  for r in surface}
        assert len(coords) == 8
        for row in surface:
            assert 0.0 <= row["goodput_fraction"] <= 1.0
            assert row["decoded_bps_x"] <= row["offered_bps_x"] + 1e-09

    def test_margin_directions(self, surface):
        cells = {(r["snr_db"], r["n_tags"], r["drift_ppm"]): r
                 for r in surface}
        # More SNR never hurts badly; DCO-class drift always hurts.
        clean = cells[(15.0, 2, 150.0)]
        assert clean["goodput_fraction"] > 0.9
        assert cells[(15.0, 2, 16000.0)]["goodput_fraction"] < \
            clean["goodput_fraction"]

    def test_cell_stability_under_axis_growth(self):
        base = capacity_surface([8.0], [2], [150.0],
                                bitrate_bps=10e3, n_trials=1,
                                epoch_s=0.01, seed=520)
        grown = capacity_surface([8.0, 15.0], [2], [150.0],
                                 bitrate_bps=10e3, n_trials=1,
                                 epoch_s=0.01, seed=520)
        assert grown[0] == base[0]

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            capacity_surface([], [2], [150.0])
