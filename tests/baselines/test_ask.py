"""Tests for the matched-filter ASK decoder."""

import numpy as np
import pytest

from repro.baselines.ask import AskDecoder
from repro.errors import ConfigurationError
from repro.phy.modulation import nrz_waveform
from repro.tags.base import build_frame
from repro.types import IQTrace


def make_capture(payload, coeff=0.1 + 0.04j, offset=500.0,
                 period=250.0, noise=0.0, seed=0):
    frame = build_frame(payload)
    n = int(offset + (frame.size + 2) * period)
    wave = nrz_waveform(frame, offset, period, n)
    samples = 0.5 + 0.3j + coeff * wave
    if noise:
        rng = np.random.default_rng(seed)
        samples = samples + (rng.normal(0, noise / np.sqrt(2), n)
                             + 1j * rng.normal(0, noise / np.sqrt(2),
                                               n))
    return IQTrace(samples=samples, sample_rate_hz=2.5e6), frame


class TestDecode:
    def test_clean_decode(self):
        payload = [1, 0, 0, 1, 1, 0, 1, 0]
        trace, frame = make_capture(payload)
        decoder = AskDecoder()
        bits = decoder.decode(trace, 500.0, 250.0, frame.size)
        np.testing.assert_array_equal(bits, frame)

    def test_payload_helper(self):
        payload = [0, 1, 1, 0]
        trace, frame = make_capture(payload)
        decoded = AskDecoder().decode_payload(trace, 500.0, 250.0,
                                              frame.size)
        np.testing.assert_array_equal(decoded, payload)

    def test_noise_tolerance(self):
        """Whole-bit integration buys a large averaging gain: heavy
        per-sample noise still decodes cleanly."""
        payload = list(np.random.default_rng(3).integers(0, 2, 40))
        trace, frame = make_capture(payload, noise=0.08, seed=4)
        bits = AskDecoder().decode(trace, 500.0, 250.0, frame.size)
        errors = np.count_nonzero(bits != frame)
        assert errors <= 1

    def test_n_bits_default_reads_all(self):
        payload = [1, 0, 1]
        trace, frame = make_capture(payload)
        bits = AskDecoder().decode(trace, 500.0, 250.0)
        assert bits.size >= frame.size

    def test_bit_means_levels(self):
        trace, frame = make_capture([1, 1, 0, 0])
        means = AskDecoder().bit_means(trace, 500.0, 250.0,
                                       frame.size)
        # Preamble alternates: first mean near env + coeff.
        assert abs(means[0] - (0.6 + 0.34j)) < 0.01
        assert abs(means[1] - (0.5 + 0.3j)) < 0.01

    def test_too_many_bits_rejected(self):
        trace, frame = make_capture([1, 0])
        with pytest.raises(ConfigurationError):
            AskDecoder().decode(trace, 500.0, 250.0, 10_000)

    def test_short_period_rejected(self):
        trace, _ = make_capture([1, 0])
        with pytest.raises(ConfigurationError):
            AskDecoder().bit_means(trace, 0.0, 5.0, 2)

    def test_preamble_too_short_for_training(self):
        with pytest.raises(ConfigurationError):
            AskDecoder(preamble_bits=1)
