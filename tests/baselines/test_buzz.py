"""Tests for the Buzz baseline."""

import numpy as np
import pytest

from repro.baselines.buzz import BuzzConfig, BuzzDecoder, BuzzSimulator
from repro.errors import ChannelEstimationError, ConfigurationError
from repro.phy.channel import ChannelModel, random_coefficients
from repro.phy.dynamics import people_movement
from repro.tags.buzz_tag import randomization_matrix


def make_channel(n, rng=0):
    coeffs = random_coefficients(n, rng=rng)
    return ChannelModel({k: c for k, c in enumerate(coeffs)},
                        environment_offset=0.5 + 0.3j)


class TestBuzzConfig:
    def test_slots_per_bit_half_n(self):
        cfg = BuzzConfig()
        assert cfg.slots_per_bit(16) == 8
        assert cfg.slots_per_bit(5) == 3
        assert cfg.slots_per_bit(1) == 1

    def test_explicit_retransmissions(self):
        cfg = BuzzConfig(retransmissions_per_bit=5)
        assert cfg.slots_per_bit(16) == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BuzzConfig(bitrate_bps=0)
        with pytest.raises(ConfigurationError):
            BuzzConfig(retransmissions_per_bit=0)
        with pytest.raises(ConfigurationError):
            BuzzConfig(estimation_repetitions=0)


class TestBuzzDecoder:
    def test_exact_inversion(self):
        n, m = 6, 3
        h = np.array(random_coefficients(n, rng=1))
        decoder = None
        for seed in range(20):  # skip singular draws, as the protocol does
            d = randomization_matrix(m, n, seed=seed)
            try:
                decoder = BuzzDecoder(d, h)
                break
            except ChannelEstimationError:
                continue
        assert decoder is not None
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, n).astype(np.int8)
        y = decoder.d @ (h * bits)
        np.testing.assert_array_equal(decoder.decode_symbol(y), bits)

    def test_environment_subtracted(self):
        n, m = 4, 2
        h = np.array(random_coefficients(n, rng=5))
        decoder = None
        for seed in range(20):
            d = randomization_matrix(m, n, seed=seed)
            try:
                decoder = BuzzDecoder(d, h)
                break
            except ChannelEstimationError:
                continue
        assert decoder is not None
        bits = np.array([1, 0, 1, 1], dtype=np.int8)
        env = 0.5 + 0.3j
        y = env + decoder.d @ (h * bits)
        np.testing.assert_array_equal(
            decoder.decode_symbol(y, environment=env), bits)

    def test_rank_deficient_rejected(self):
        d = np.ones((1, 4), dtype=np.int8)  # one equation, 4 unknowns
        h = np.array(random_coefficients(4, rng=6))
        with pytest.raises(ChannelEstimationError):
            BuzzDecoder(d, h)

    def test_shape_validation(self):
        d = randomization_matrix(4, 4, seed=7)
        h = np.array(random_coefficients(4, rng=8))
        decoder = BuzzDecoder(d, h)
        with pytest.raises(ConfigurationError):
            decoder.decode_symbol(np.ones(3, dtype=complex))
        with pytest.raises(ConfigurationError):
            BuzzDecoder(d, h[:2])


class TestBuzzSimulator:
    def test_transmit_round_trip(self):
        channel = make_channel(6, rng=0)
        sim = BuzzSimulator(channel, noise_std=0.02, rng=1)
        rng = np.random.default_rng(2)
        msgs = {k: rng.integers(0, 2, 24).astype(np.int8)
                for k in range(6)}
        decoded, airtime = sim.transmit(msgs)
        for k in range(6):
            np.testing.assert_array_equal(decoded[k], msgs[k])
        assert airtime > 0

    def test_airtime_includes_estimation(self):
        channel = make_channel(4, rng=3)
        cfg = BuzzConfig(estimation_repetitions=10)
        sim = BuzzSimulator(channel, cfg, rng=4)
        msgs = {k: np.ones(8, dtype=np.int8) for k in range(4)}
        _, with_est = sim.transmit(msgs)
        estimates = sim.estimate_channels()
        _, without_est = sim.transmit(msgs, estimated=estimates)
        slot = cfg.slot_duration_s
        assert with_est - without_est == pytest.approx(40 * slot)

    def test_stale_estimates_cause_errors(self):
        """Channel dynamics break Buzz: estimates from t=0 fail when
        the coefficients move (Figure 1's motivation)."""
        base = random_coefficients(6, rng=5)
        trajectories = {k: people_movement(base[k], 20.0,
                                           wander_scale=0.6,
                                           rng=k)
                        for k in range(6)}
        channel = ChannelModel({k: base[k] for k in range(6)},
                               trajectories=trajectories)
        sim = BuzzSimulator(channel, noise_std=0.01, rng=6)
        estimates = sim.estimate_channels(at_time_s=0.0)
        rng = np.random.default_rng(7)
        msgs = {k: rng.integers(0, 2, 32).astype(np.int8)
                for k in range(6)}
        decoded, _ = sim.transmit(msgs, at_time_s=18.0,
                                  estimated=estimates)
        errors = sum(int(np.count_nonzero(decoded[k] != msgs[k]))
                     for k in range(6))
        assert errors > 0

    def test_estimation_accuracy(self):
        channel = make_channel(4, rng=8)
        sim = BuzzSimulator(channel, noise_std=0.01, rng=9)
        estimates = sim.estimate_channels()
        for tag_id, est in estimates.items():
            true = channel.coefficients[tag_id]
            assert abs(est - true) < 0.01

    def test_aggregate_throughput_near_2x(self):
        channel = make_channel(16, rng=10)
        sim = BuzzSimulator(channel, rng=11)
        tput = sim.aggregate_throughput_bps(message_bits=8192)
        assert tput == pytest.approx(2 * 100e3, rel=0.1)

    def test_identification_time_grows_with_n(self):
        channel = make_channel(4, rng=12)
        sim = BuzzSimulator(channel, rng=13)
        assert sim.identification_time_s(16) > \
            sim.identification_time_s(4)

    def test_lockstep_requires_equal_lengths(self):
        channel = make_channel(2, rng=14)
        sim = BuzzSimulator(channel, rng=15)
        with pytest.raises(ConfigurationError):
            sim.transmit({0: np.ones(4, dtype=np.int8),
                          1: np.ones(5, dtype=np.int8)})

    def test_all_tags_must_have_messages(self):
        channel = make_channel(2, rng=16)
        sim = BuzzSimulator(channel, rng=17)
        with pytest.raises(ConfigurationError):
            sim.transmit({0: np.ones(4, dtype=np.int8)})


class TestWaveformLevel:
    def test_waveform_level_round_trip(self):
        channel = make_channel(4, rng=20)
        sim = BuzzSimulator(channel, noise_std=0.05, rng=21,
                            samples_per_slot=100)
        rng = np.random.default_rng(22)
        msgs = {k: rng.integers(0, 2, 16).astype(np.int8)
                for k in range(4)}
        decoded, airtime = sim.transmit_waveform_level(msgs)
        for k in range(4):
            np.testing.assert_array_equal(decoded[k], msgs[k])
        assert airtime > 0

    def test_agrees_with_symbol_level(self):
        """The integrated-noise shortcut and the rendered waveform path
        produce the same decode on the same channel."""
        channel = make_channel(4, rng=23)
        msgs = {k: np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.int8)
                for k in range(4)}
        sym = BuzzSimulator(channel, noise_std=0.0, rng=24)
        wav = BuzzSimulator(channel, noise_std=0.0, rng=24)
        dec_sym, air_sym = sym.transmit(msgs)
        dec_wav, air_wav = wav.transmit_waveform_level(msgs)
        assert air_sym == air_wav
        for k in range(4):
            np.testing.assert_array_equal(dec_sym[k], dec_wav[k])
