"""Tests for the Section 2.3 cluster-separation strawman."""

import numpy as np
import pytest

from repro.baselines.qam_cluster import (ClusterSeparator,
                                         blind_cluster_accuracy,
                                         synthesize_synchronous_samples)
from repro.errors import ConfigurationError, DecodeError
from repro.phy.channel import random_coefficients


class TestClusterSeparator:
    def test_cluster_count_is_2_to_n(self):
        coeffs = random_coefficients(3, rng=0)
        assert ClusterSeparator(coeffs).n_clusters == 8

    def test_decode_two_tags_clean(self):
        coeffs = random_coefficients(2, min_separation=0.05, rng=1)
        samples, truth = synthesize_synchronous_samples(
            coeffs, 200, noise_std=0.005, rng=2)
        separator = ClusterSeparator(coeffs)
        assert separator.symbol_accuracy(samples, truth) > 0.99

    def test_six_tags_degrade(self):
        """The Figure 2(c) claim: 64 clusters crowd together and
        accuracy collapses relative to the 2-tag case."""
        rng = 3
        coeffs6 = random_coefficients(6, rng=rng)
        samples6, truth6 = synthesize_synchronous_samples(
            coeffs6, 300, noise_std=0.02, rng=4)
        acc6 = ClusterSeparator(coeffs6).symbol_accuracy(samples6,
                                                         truth6)
        coeffs2 = random_coefficients(2, min_separation=0.05, rng=rng)
        samples2, truth2 = synthesize_synchronous_samples(
            coeffs2, 300, noise_std=0.02, rng=5)
        acc2 = ClusterSeparator(coeffs2).symbol_accuracy(samples2,
                                                         truth2)
        assert acc6 < acc2

    def test_min_gap_shrinks_with_tags(self):
        gaps = []
        for n in (2, 4, 6):
            coeffs = random_coefficients(n, rng=7)
            gaps.append(ClusterSeparator(coeffs).min_cluster_gap())
        assert gaps[2] < gaps[0]

    def test_environment_offset_applied(self):
        separator = ClusterSeparator([0.1 + 0j], environment=1 + 1j)
        centres = separator.cluster_centres()
        assert (1 + 1j) in centres
        assert (1.1 + 1j) in centres

    def test_decode_shape(self):
        coeffs = random_coefficients(2, rng=8)
        samples, _ = synthesize_synchronous_samples(coeffs, 50, rng=9)
        decoded = ClusterSeparator(coeffs).decode_samples(samples)
        assert decoded.shape == (samples.size, 2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterSeparator([])
        with pytest.raises(ConfigurationError):
            ClusterSeparator(random_coefficients(13, rng=0))
        separator = ClusterSeparator([0.1])
        with pytest.raises(DecodeError):
            separator.decode_samples(np.empty(0, dtype=complex))
        with pytest.raises(ConfigurationError):
            separator.symbol_accuracy(np.ones(3, dtype=complex),
                                      np.ones((2, 1), dtype=np.int8))


class TestSynthesize:
    def test_shapes(self):
        coeffs = random_coefficients(3, rng=10)
        samples, truth = synthesize_synchronous_samples(
            coeffs, 40, samples_per_symbol=5, rng=11)
        assert samples.size == 200
        assert truth.shape == (200, 3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            synthesize_synchronous_samples([0.1], 0)


class TestBlindClustering:
    def test_two_tags_mostly_recoverable(self):
        coeffs = random_coefficients(2, min_separation=0.06, rng=12)
        samples, _ = synthesize_synchronous_samples(
            coeffs, 400, noise_std=0.004, rng=13)
        acc = blind_cluster_accuracy(samples, 2, rng=14)
        assert acc > 0.8

    def test_too_few_samples(self):
        with pytest.raises(ConfigurationError):
            blind_cluster_accuracy(np.ones(10, dtype=complex), 6)
