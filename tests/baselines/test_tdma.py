"""Tests for the stripped Gen 2 TDMA baseline."""

import numpy as np
import pytest

from repro.baselines.tdma import (TdmaConfig, TdmaSimulator,
                                  identification_times)
from repro.errors import ConfigurationError


class TestThroughput:
    def test_flat_in_tag_count(self):
        """TDMA serializes: aggregate equals the single-tag bitrate no
        matter how many tags share the channel (Figure 8)."""
        sim = TdmaSimulator(rng=0)
        assert sim.aggregate_throughput_bps(1) == \
            sim.aggregate_throughput_bps(16) == 100e3

    def test_control_overhead_reduces_efficiency(self):
        sim = TdmaSimulator(TdmaConfig(control_bits_per_slot=32),
                            rng=0)
        assert sim.aggregate_throughput_bps(4) == pytest.approx(
            100e3 * 96 / 128)

    def test_run_transfer_round_robin(self):
        sim = TdmaSimulator(rng=0)
        report = sim.run_transfer(4, duration_s=0.01)
        # 0.01 s / 0.96 ms per slot = 10 slots.
        assert report.bits_correct == 10 * 96
        assert max(report.per_tag_bits.values()) \
            - min(report.per_tag_bits.values()) <= 96

    def test_throughput_report_scheme(self):
        report = TdmaSimulator(rng=0).run_transfer(2, 0.01)
        assert report.scheme == "tdma"
        assert report.goodput_fraction == 1.0


class TestIdentification:
    def test_analytic_scales_linearly(self):
        sim = TdmaSimulator(rng=0)
        s4 = sim.identification_slots(4, simulate=False)
        s16 = sim.identification_slots(16, simulate=False)
        assert s16 == pytest.approx(4 * s4, rel=0.1)

    def test_simulation_at_least_n_slots(self):
        sim = TdmaSimulator(rng=1)
        for n in (1, 4, 16):
            assert sim.identification_slots(n) >= n

    def test_simulation_near_e_times_n(self):
        sim = TdmaSimulator(rng=2)
        trials = [sim.identification_slots(16) for _ in range(30)]
        mean = np.mean(trials)
        assert 1.8 * 16 < mean < 4.0 * 16

    def test_identification_time_positive_and_increasing(self):
        sim = TdmaSimulator(rng=3)
        t4 = sim.identification_time_s(4, simulate=False)
        t16 = sim.identification_time_s(16, simulate=False)
        assert 0 < t4 < t16

    def test_identification_times_sweep(self):
        times = identification_times([2, 4], n_trials=5, rng=4)
        assert set(times) == {2, 4}
        assert times[4] > times[2]


class TestValidation:
    def test_config(self):
        with pytest.raises(ConfigurationError):
            TdmaConfig(slot_bits=0)
        with pytest.raises(ConfigurationError):
            TdmaConfig(bitrate_bps=-1)
        with pytest.raises(ConfigurationError):
            TdmaConfig(control_bits_per_slot=-1)

    def test_runtime(self):
        sim = TdmaSimulator(rng=0)
        with pytest.raises(ConfigurationError):
            sim.aggregate_throughput_bps(0)
        with pytest.raises(ConfigurationError):
            sim.run_transfer(2, 0.0)
        with pytest.raises(ConfigurationError):
            sim.identification_slots(0)
