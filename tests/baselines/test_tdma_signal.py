"""Tests for the waveform-level TDMA transfer path."""

import pytest

from repro.baselines.tdma import TdmaConfig, TdmaSimulator
from repro.errors import ConfigurationError
from repro.types import SimulationProfile


def make_sim():
    return TdmaSimulator(TdmaConfig(bitrate_bps=10e3), rng=0)


def test_clean_slots_decode_perfectly():
    sim = make_sim()
    report = sim.run_transfer_signal_level(
        3, 6, profile=SimulationProfile.fast(), rng=1)
    assert report.goodput_fraction == 1.0
    assert report.bits_sent == 6 * 96


def test_round_robin_fairness():
    sim = make_sim()
    report = sim.run_transfer_signal_level(
        2, 6, profile=SimulationProfile.fast(), rng=2)
    assert report.per_tag_bits[0] == report.per_tag_bits[1]


def test_signal_level_matches_protocol_model():
    """The waveform-level decode confirms the analytic throughput the
    Figure 8 baseline uses: one serialized channel at the bitrate."""
    sim = make_sim()
    report = sim.run_transfer_signal_level(
        4, 8, profile=SimulationProfile.fast(), rng=3)
    assert report.throughput_bps == pytest.approx(
        sim.aggregate_throughput_bps(4), rel=0.01)


def test_heavy_noise_causes_errors():
    sim = make_sim()
    clean = sim.run_transfer_signal_level(
        2, 4, profile=SimulationProfile.fast(), noise_std=0.01, rng=4)
    noisy = sim.run_transfer_signal_level(
        2, 4, profile=SimulationProfile.fast(), noise_std=2.5, rng=4)
    assert noisy.goodput_fraction < clean.goodput_fraction


def test_validation():
    sim = make_sim()
    with pytest.raises(ConfigurationError):
        sim.run_transfer_signal_level(0, 4)
    with pytest.raises(ConfigurationError):
        sim.run_transfer_signal_level(2, 0)
