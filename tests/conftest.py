"""Shared fixtures for the LF-Backscatter test suite.

Everything runs on the fast profile (2.5 Msps / 10 kbps — the same 250x
oversampling ratio as the paper's setup) with short epochs so the whole
suite stays quick while exercising the identical decoder code paths.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.pipeline import LFDecoder, LFDecoderConfig
from repro.phy.channel import ChannelModel, random_coefficients
from repro.reader.simulator import NetworkSimulator
from repro.tags.lf_tag import LFTag
from repro.types import SimulationProfile, TagConfig

if os.environ.get("REPRO_STAGE_OBSERVER"):
    # Observer-attached test mode: every decoder the suite constructs
    # gets a counting StageObserver, so a full run under this flag
    # proves observation is zero-cost to correctness (CI runs the
    # chaos + equivalence suites both ways).  Note process-pool
    # workers construct their decoders in child processes where this
    # hook is absent — exactly the point: their results must match
    # the observed in-process ones anyway.
    from repro.core.stages import StageObserver

    class _CountingObserver(StageObserver):
        def __init__(self) -> None:
            self.stage_starts = 0
            self.stage_ends = 0
            self.stream_faults = 0

        def on_stage_start(self, stage, ctx):
            self.stage_starts += 1

        def on_stage_end(self, stage, ctx, elapsed_s):
            self.stage_ends += 1

        def on_stream_fault(self, fault, ctx):
            self.stream_faults += 1

    _original_init = LFDecoder.__init__

    def _observed_init(self, *args, **kwargs):
        _original_init(self, *args, **kwargs)
        self.add_observer(_CountingObserver())

    LFDecoder.__init__ = _observed_init


@pytest.fixture(scope="session")
def fast_profile() -> SimulationProfile:
    return SimulationProfile.fast()


def build_network(n_tags: int, profile: SimulationProfile,
                  bitrate_bps: float = 10e3,
                  noise_std: float = 0.01,
                  seed: int = 0) -> NetworkSimulator:
    """A standard n-tag network used across integration tests."""
    gen = np.random.default_rng(seed)
    coeffs = random_coefficients(n_tags, rng=gen)
    channel = ChannelModel({k: coeffs[k] for k in range(n_tags)},
                           environment_offset=0.5 + 0.3j)
    tags = [LFTag(TagConfig(tag_id=k, bitrate_bps=bitrate_bps,
                            channel_coefficient=coeffs[k]),
                  profile=profile,
                  rng=np.random.default_rng(gen.integers(0, 2 ** 63)))
            for k in range(n_tags)]
    return NetworkSimulator(tags, channel, profile=profile,
                            noise_std=noise_std,
                            rng=np.random.default_rng(
                                gen.integers(0, 2 ** 63)))


def build_decoder(profile: SimulationProfile,
                  bitrates=(10e3,), seed: int = 1,
                  **config_kwargs) -> LFDecoder:
    """A decoder matching :func:`build_network`'s defaults."""
    config = LFDecoderConfig(candidate_bitrates_bps=list(bitrates),
                             profile=profile, **config_kwargs)
    return LFDecoder(config, rng=seed)


@pytest.fixture()
def single_tag_capture(fast_profile):
    """One clean single-tag epoch plus its truth."""
    sim = build_network(1, fast_profile, seed=11)
    return sim.run_epoch(0.01)


@pytest.fixture()
def four_tag_capture(fast_profile):
    """A four-tag epoch (usually collision-free at these seeds)."""
    sim = build_network(4, fast_profile, seed=5)
    return sim.run_epoch(0.01)
