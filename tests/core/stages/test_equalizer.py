"""The blind equalizer pre-stage: estimation, gating, and bit-safety.

Three contracts, in increasing strictness:

* **estimator** — on a synthetic piecewise-constant waveform through a
  known FIR channel, ``estimate_channel`` finds taps at the true echo
  lags; on a flat channel it refuses with ``reason="flat"``.
* **pass-through** — ``equalize`` on flat or unusable input returns
  the *same object* (the stage then leaves the decode bit-identical);
  with ``enable_equalizer=False`` (the default) the stage contributes
  neither samples, timings, nor a report — pinned elsewhere by the
  golden digests.
* **recovery** — on a corridor-multipath capture the equalized decode
  beats the baseline decode (the reason the stage exists).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.throughput import score_epoch
from repro.core.equalizer import (EqualizerConfig, EqualizerReport,
                                  equalize, estimate_channel)
from repro.errors import ConfigurationError
from repro.phy.multipath import MultipathProfile, apply_multipath
from repro.robustness.impairments import MultipathChannel, impair_capture

from ...conftest import build_decoder, build_network

SAMPLES_PER_BIT = 250


def _piecewise_constant(n_edges=300, seed=0, noise=0.01):
    """A backscatter-like waveform: random levels, bit-length runs."""
    rng = np.random.default_rng(seed)
    levels = (rng.choice([0.3, 0.5, 0.7], size=n_edges)
              + 1j * rng.choice([0.2, 0.4], size=n_edges))
    samples = np.repeat(levels, SAMPLES_PER_BIT)
    samples = samples + noise * (
        rng.normal(size=samples.size)
        + 1j * rng.normal(size=samples.size))
    return samples


def test_config_validation():
    with pytest.raises(ConfigurationError):
        EqualizerConfig(peak_threshold=0.5)
    with pytest.raises(ConfigurationError):
        EqualizerConfig(strong_fraction=1.5)


def test_flat_channel_refused_as_flat():
    report = estimate_channel(_piecewise_constant())
    assert report.reason == "flat"
    assert not report.applied


def test_nonfinite_input_refused():
    samples = _piecewise_constant()
    samples[100] = np.nan
    report = estimate_channel(samples)
    assert report.reason == "nonfinite"


def test_estimator_finds_true_echo_lags():
    true = MultipathProfile(delays_samples=(0, 40, 90),
                            gains=(1.0, 0.45, 0.3))
    channel = apply_multipath(_piecewise_constant(), true)
    report = estimate_channel(channel)
    assert report.reason == ""
    assert report.impulse_response is not None
    h = report.impulse_response
    # Direct tap normalized, echoes recovered near the true lags with
    # roughly the right magnitudes.
    assert h[0] == pytest.approx(1.0)
    for lag, gain in ((40, 0.45), (90, 0.3)):
        window = np.abs(h[lag - 1:lag + 2])
        assert window.max() == pytest.approx(gain, abs=0.15)
    assert report.delay_spread_samples >= 85


def test_equalize_inverts_a_known_channel():
    clean = _piecewise_constant(seed=3)
    true = MultipathProfile(delays_samples=(0, 60, 150),
                            gains=(1.0, 0.5, 0.35))
    channel = apply_multipath(clean, true)
    out, report = equalize(channel)
    assert report.applied
    # Deconvolution restores the waveform far closer to the clean
    # original than the echo-distorted input was.
    err_before = np.mean(np.abs(channel - clean) ** 2)
    err_after = np.mean(np.abs(out - clean) ** 2)
    assert err_after < 0.2 * err_before


def test_passthrough_returns_input_object():
    samples = _piecewise_constant(seed=5)
    out, report = equalize(samples)
    assert out is samples
    assert not report.applied
    assert report.reason == "flat"


def test_disabled_stage_is_absent_from_decode(fast_profile,
                                              four_tag_capture):
    decoder = build_decoder(fast_profile)
    result = decoder.decode_epoch(four_tag_capture.trace)
    assert result.equalizer is None
    assert "equalize" not in result.stage_timings


def test_enabled_stage_reports_flat_passthrough(fast_profile,
                                                four_tag_capture):
    baseline = build_decoder(fast_profile).decode_epoch(
        four_tag_capture.trace)
    decoder = build_decoder(fast_profile, enable_equalizer=True)
    result = decoder.decode_epoch(four_tag_capture.trace)
    report = result.equalizer
    assert isinstance(report, EqualizerReport)
    assert not report.applied
    assert report.reason == "flat"
    assert "equalize" in result.stage_timings
    # Flat-channel decodes are identical with the stage enabled: the
    # pass-through hands the very same trace downstream.
    assert [s.period_samples for s in result.streams] == \
        [s.period_samples for s in baseline.streams]


def test_equalizer_recovers_hallway_multipath(fast_profile):
    sim = build_network(6, fast_profile, seed=42)
    capture = sim.run_epoch(0.01)
    impaired = impair_capture(
        capture, [MultipathChannel(preset="hallway")], rng=42)

    base = build_decoder(fast_profile).decode_epoch(impaired.trace)
    eq_decoder = build_decoder(fast_profile, enable_equalizer=True)
    equalized = eq_decoder.decode_epoch(impaired.trace)

    assert equalized.equalizer.applied
    gp_base = score_epoch(impaired, base).goodput_fraction
    gp_eq = score_epoch(impaired, equalized).goodput_fraction
    assert gp_eq > gp_base
    assert gp_eq >= 0.85
