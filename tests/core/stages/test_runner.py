"""Unit tests for the stage runner's cross-cutting behaviours.

Timing, ``done`` short-circuits, per-stream fault confinement and
observer dispatch are the runner's whole job — stage modules assume
them, so they are pinned here with synthetic stages instead of the
real decode graph.
"""

import numpy as np
import pytest

from repro.core.pipeline import LFDecoder, LFDecoderConfig
from repro.core.stages.context import (DecodeContext, Stage,
                                       StageObserver, StageRunner,
                                       StreamScope)
from repro.core.stages.stats import StatsAccumulator
from repro.errors import ConfigurationError, DecodeError
from repro.types import DecodedStream, IQTrace, StreamHypothesis

from ...conftest import build_decoder


class _FakeStage:
    """A scriptable stage: runs ``action(ctx)`` when invoked."""

    def __init__(self, name, timing_key=None, action=None):
        self.name = name
        self.timing_key = timing_key
        self.calls = 0
        self._action = action

    def run(self, ctx):
        self.calls += 1
        if self._action is not None:
            self._action(ctx)


class _RecordingObserver(StageObserver):
    def __init__(self):
        self.events = []

    def on_stage_start(self, stage, ctx):
        self.events.append(("start", stage.name))

    def on_stage_end(self, stage, ctx, elapsed_s):
        assert elapsed_s >= 0.0
        self.events.append(("end", stage.name))

    def on_stream_fault(self, fault, ctx):
        self.events.append(("fault", fault.error_type))


@pytest.fixture()
def ctx(fast_profile):
    decoder = build_decoder(fast_profile)
    trace = IQTrace(np.ones(4096, dtype=np.complex128),
                    fast_profile.sample_rate_hz)
    stats = StatsAccumulator(fidelity=decoder.fidelity.new_stats())
    return DecodeContext(trace, decoder.config, decoder._rng,
                         decoder.edge_detector, decoder.viterbi,
                         decoder.fidelity, stats)


def _scope():
    return StreamScope(hypothesis=StreamHypothesis(
        offset_samples=100.0, period_samples=250.0))


class TestStageProtocol:
    def test_fake_stage_satisfies_the_protocol(self):
        assert isinstance(_FakeStage("x"), Stage)

    def test_real_decoder_stages_satisfy_the_protocol(self, fast_profile):
        decoder = build_decoder(fast_profile)
        for stage in (*decoder.epoch_stages, *decoder.stream_stages):
            assert isinstance(stage, Stage), stage


class TestTiming:
    def test_timing_key_stage_is_timed_by_the_runner(self, ctx):
        runner = StageRunner([_FakeStage("edge", timing_key="edge")], [])
        runner.run_epoch(ctx)
        assert "edge" in ctx.stats.timings
        assert ctx.stats.timings["edge"] >= 0.0

    def test_self_timed_stage_gets_no_runner_bucket(self, ctx):
        runner = StageRunner([_FakeStage("guard", timing_key=None)], [])
        runner.run_epoch(ctx)
        assert ctx.stats.timings == {}

    def test_timing_accumulates_across_invocations(self, ctx):
        stage = _FakeStage("fold", timing_key="fold")
        runner = StageRunner([stage, stage], [])
        runner.run_epoch(ctx)
        assert stage.calls == 2
        assert len(ctx.stats.timings) == 1  # one shared bucket


class TestShortCircuit:
    def test_ctx_done_skips_the_remaining_epoch_stages(self, ctx):
        def reject(c):
            c.done = True
        late = _FakeStage("late")
        runner = StageRunner([_FakeStage("guard", action=reject), late],
                             [])
        runner.run_epoch(ctx)
        assert late.calls == 0

    def test_scope_done_skips_the_remaining_stream_stages(self, ctx):
        def resolve(c):
            c.stream.finish([])
        late = _FakeStage("anchor")
        runner = StageRunner([], [_FakeStage("track", action=resolve),
                                  late])
        runner.run_stream(ctx, _scope())
        assert late.calls == 0

    def test_finish_returns_the_resolved_streams(self, ctx):
        stream = DecodedStream(bits=np.array([0, 1]),
                               offset_samples=10.0,
                               period_samples=250.0, bitrate_bps=10e3)

        def resolve(c):
            c.stream.finish([stream])
        runner = StageRunner([], [_FakeStage("track", action=resolve)])
        assert runner.run_stream(ctx, _scope()) == [stream]


class TestFaultConfinement:
    @pytest.mark.parametrize("exc_type", [DecodeError,
                                          ConfigurationError])
    def test_gate_failures_record_an_expected_fault(self, ctx,
                                                    exc_type):
        def gate(c):
            raise exc_type("junk hypothesis")
        runner = StageRunner([], [_FakeStage("track", action=gate)])
        assert runner.run_stream(ctx, _scope()) == []
        fault, = ctx.stats.faults
        assert fault.expected
        assert fault.stage == "decode"
        assert fault.error_type == exc_type.__name__

    def test_bugs_record_an_unexpected_fault(self, ctx):
        def bug(c):
            raise RuntimeError("synthetic stage bug")
        runner = StageRunner([], [_FakeStage("track", action=bug)])
        assert runner.run_stream(ctx, _scope()) == []
        fault, = ctx.stats.faults
        assert not fault.expected
        assert fault.error_type == "RuntimeError"
        assert fault.offset_samples == 100.0

    def test_one_faulted_hypothesis_does_not_stop_the_next(self, ctx):
        state = {"calls": 0}

        def flaky(c):
            state["calls"] += 1
            if state["calls"] == 1:
                raise RuntimeError("first hypothesis only")
            c.stream.finish([])
        runner = StageRunner([], [_FakeStage("track", action=flaky)])
        runner.run_stream(ctx, _scope())
        runner.run_stream(ctx, _scope())
        assert state["calls"] == 2
        assert len(ctx.stats.faults) == 1

    def test_stream_scope_is_cleared_even_on_a_fault(self, ctx):
        def bug(c):
            raise RuntimeError("boom")
        runner = StageRunner([], [_FakeStage("track", action=bug)])
        runner.run_stream(ctx, _scope())
        assert ctx.stream is None


class TestObserverDispatch:
    def test_start_and_end_fire_around_each_stage(self, ctx):
        observer = _RecordingObserver()
        runner = StageRunner([_FakeStage("edge", timing_key="edge"),
                              _FakeStage("fold", timing_key="fold")],
                             [], observers=[observer])
        runner.run_epoch(ctx)
        assert observer.events == [("start", "edge"), ("end", "edge"),
                                   ("start", "fold"), ("end", "fold")]

    def test_fault_callback_fires_on_confinement(self, ctx):
        observer = _RecordingObserver()

        def bug(c):
            raise RuntimeError("boom")
        runner = StageRunner([], [_FakeStage("track", action=bug)],
                             observers=[observer])
        runner.run_stream(ctx, _scope())
        assert ("fault", "RuntimeError") in observer.events

    def test_observed_timing_still_lands_in_the_bucket(self, ctx):
        runner = StageRunner([_FakeStage("edge", timing_key="edge")],
                             [], observers=[_RecordingObserver()])
        runner.run_epoch(ctx)
        assert "edge" in ctx.stats.timings
