"""Per-stage unit tests: each decode stage in isolation.

Each test drives one stage over a hand-built :class:`DecodeContext`
(mirroring how ``LFDecoder.decode_epoch`` constructs it) so failures
localize to a stage module instead of the whole pipeline.  The
end-to-end behaviour of the composed graph is pinned separately by the
golden-digest equivalence suite.
"""

import numpy as np
import pytest

from repro.core.stages.anchor import DedupStage, dedup_streams
from repro.core.stages.context import DecodeContext
from repro.core.stages.edges import EdgeStage
from repro.core.stages.folding import FoldStage
from repro.core.stages.guard import GuardStage
from repro.core.stages.projection import (hold_cluster_noise,
                                          looks_multilevel,
                                          project_single,
                                          project_single_scaled)
from repro.core.stages.stats import StatsAccumulator
from repro.errors import DecodeError
from repro.types import DecodedStream, IQTrace

from ...conftest import build_decoder, build_network


def make_ctx(decoder, trace):
    """Build a context exactly like ``LFDecoder.decode_epoch`` does."""
    stats = StatsAccumulator(fidelity=decoder.fidelity.new_stats())
    decoder.viterbi.stats = stats.fidelity
    ctx = DecodeContext(trace, decoder.config, decoder._rng,
                        decoder.edge_detector, decoder.viterbi,
                        decoder.fidelity, stats)
    ctx.runner = decoder._runner
    return ctx


@pytest.fixture()
def capture(fast_profile):
    return build_network(2, fast_profile, seed=7).run_epoch(0.008)


class TestGuardStage:
    def test_disabled_guard_never_times_a_guard_bucket(self,
                                                       fast_profile,
                                                       capture):
        decoder = build_decoder(fast_profile, enable_trace_guard=False)
        ctx = make_ctx(decoder, capture.trace)
        GuardStage().run(ctx)
        assert "guard" not in ctx.stats.timings
        assert ctx.trace is capture.trace
        assert ctx.result.trace_health is None

    def test_clean_trace_passes_through_untouched(self, fast_profile,
                                                  capture):
        decoder = build_decoder(fast_profile)
        ctx = make_ctx(decoder, capture.trace)
        GuardStage().run(ctx)
        assert ctx.trace is capture.trace  # same object, caches survive
        assert ctx.result.trace_health.verdict == "clean"
        assert "guard" in ctx.stats.timings
        assert not ctx.done

    def test_flatline_capture_rejects_the_epoch(self, fast_profile):
        decoder = build_decoder(fast_profile)
        flat = IQTrace(np.full(4096, 0.5 + 0.5j),
                       fast_profile.sample_rate_hz)
        ctx = make_ctx(decoder, flat)
        GuardStage().run(ctx)
        assert ctx.done
        assert ctx.result.trace_health.verdict == "rejected"
        fault, = ctx.stats.faults
        assert fault.stage == "guard"
        assert not fault.expected

    def test_nan_gap_is_repaired_and_reported(self, fast_profile,
                                              capture):
        decoder = build_decoder(fast_profile)
        samples = capture.trace.samples.copy()
        samples[1000:1010] = np.nan
        dirty = IQTrace(samples, fast_profile.sample_rate_hz,
                        allow_nonfinite=True)
        ctx = make_ctx(decoder, dirty)
        GuardStage().run(ctx)
        assert not ctx.done
        assert ctx.result.trace_health.verdict == "degraded"
        assert ctx.result.trace_health.n_interpolated == 10
        assert np.all(np.isfinite(ctx.trace.samples))


class TestEdgeStage:
    def test_detects_edges_on_a_real_capture(self, fast_profile,
                                             capture):
        decoder = build_decoder(fast_profile)
        ctx = make_ctx(decoder, capture.trace)
        EdgeStage().run(ctx)
        assert ctx.edges
        assert ctx.result.n_edges_detected == len(ctx.edges)
        assert not ctx.done

    def test_edgeless_capture_short_circuits_the_epoch(self,
                                                       fast_profile):
        decoder = build_decoder(fast_profile)
        quiet = IQTrace(np.full(4096, 1.0 + 0j)
                        + 1e-9 * np.arange(4096),
                        fast_profile.sample_rate_hz)
        ctx = make_ctx(decoder, quiet)
        EdgeStage().run(ctx)
        assert ctx.edges == []
        assert ctx.done


class TestFoldStage:
    def test_cold_fold_finds_hypotheses_with_no_sources(self,
                                                        fast_profile,
                                                        capture):
        decoder = build_decoder(fast_profile)
        ctx = make_ctx(decoder, capture.trace)
        EdgeStage().run(ctx)
        FoldStage().run(ctx)
        assert ctx.hypotheses
        assert ctx.sources == [None] * len(ctx.hypotheses)
        for hyp in ctx.hypotheses:
            period = fast_profile.sample_rate_hz / 10e3
            assert hyp.period_samples == pytest.approx(period, rel=0.01)

    def test_spurious_count_is_the_unclaimed_edges(self, fast_profile,
                                                   capture):
        decoder = build_decoder(fast_profile)
        ctx = make_ctx(decoder, capture.trace)
        EdgeStage().run(ctx)
        FoldStage().run(ctx)
        claimed = set()
        for hyp in ctx.hypotheses:
            claimed.update(hyp.edge_indices)
        assert ctx.result.n_spurious_edges \
            == len(ctx.edges) - len(claimed)


class TestStreamChain:
    """The composed stream chain, driven through the real runner."""

    def test_manual_stage_composition_matches_decode_epoch(
            self, fast_profile, capture):
        reference = build_decoder(fast_profile) \
            .decode_epoch(capture.trace)
        decoder = build_decoder(fast_profile)
        ctx = make_ctx(decoder, capture.trace)
        for stage in decoder.epoch_stages:
            if ctx.done:
                break
            stage.run(ctx)
        decoded = {(s.offset_samples, s.bits.tobytes())
                   for s in ctx.result.streams}
        expected = {(s.offset_samples, s.bits.tobytes())
                    for s in reference.streams}
        assert decoded == expected
        assert ctx.result.streams


class TestProjection:
    def _three_level(self, rng, n=400):
        levels = rng.choice([-1.0, 0.0, 1.0], size=n)
        d = levels * (0.8 + 0.6j)
        return d + 0.01 * (rng.standard_normal(n)
                           + 1j * rng.standard_normal(n))

    def test_projection_normalizes_to_unit_levels(self):
        rng = np.random.default_rng(0)
        obs = project_single(self._three_level(rng))
        strong = obs[np.abs(obs) > 0.5]
        assert np.allclose(np.abs(strong), 1.0, atol=0.1)

    def test_scaled_variant_returns_the_normalization(self):
        rng = np.random.default_rng(0)
        d = self._three_level(rng)
        obs, scale = project_single_scaled(d)
        assert scale == pytest.approx(1.0, abs=0.1)  # |0.8+0.6j| = 1
        assert np.allclose(project_single(d), obs)

    def test_empty_differentials_raise_decode_error(self):
        with pytest.raises(DecodeError):
            project_single(np.array([], dtype=np.complex128))

    def test_hold_cluster_noise_tracks_the_injected_noise(self):
        rng = np.random.default_rng(1)
        noise = 0.05
        d = self._three_level(rng) * 1.0
        d += 0.0  # copy-safety no-op
        measured = hold_cluster_noise(d)
        assert 0.0 < measured < 3 * noise

    def test_looks_multilevel_separates_3_from_9_levels(self):
        # Noiseless levels: the 9-cluster fit of genuinely 3-level
        # data cannot beat 3 clusters (both reach zero inertia on the
        # levels themselves), while 9-level data leaves the 3-cluster
        # fit with large residuals.  Gaussian jitter would instead let
        # nine clusters win ~5x on *any* 1-D data by noise-splitting —
        # exactly the margin the improvement factor guards against.
        rng = np.random.default_rng(2)
        three = rng.choice([-1.0, 0.0, 1.0], size=300)
        nine = rng.choice(np.linspace(-1, 1, 9), size=300)
        assert not looks_multilevel(three, np.random.default_rng(3))
        assert looks_multilevel(nine, np.random.default_rng(3))

    def test_short_projections_never_count_as_multilevel(self):
        obs = np.linspace(-1, 1, 9)
        assert not looks_multilevel(obs, np.random.default_rng(0))


class TestDedupStage:
    def _stream(self, offset, bits, confidence=0.9):
        return DecodedStream(bits=np.array(bits, dtype=np.uint8),
                             offset_samples=offset,
                             period_samples=250.0, bitrate_bps=10e3,
                             confidence=confidence)

    def test_ghost_duplicate_is_dropped(self):
        original = self._stream(100.0, [1, 0, 1, 1], confidence=0.95)
        ghost = self._stream(103.0, [1, 0, 1, 1], confidence=0.6)
        kept = dedup_streams([original, ghost])
        assert kept == [original]

    def test_distinct_bits_at_the_same_phase_survive(self):
        a = self._stream(100.0, [1, 0, 1, 1, 0, 0])
        b = self._stream(102.0, [0, 1, 0, 0, 1, 1])
        assert len(dedup_streams([a, b])) == 2

    def test_stage_rewrites_the_result_streams(self, fast_profile,
                                               capture):
        decoder = build_decoder(fast_profile)
        ctx = make_ctx(decoder, capture.trace)
        original = self._stream(100.0, [1, 0, 1, 1], confidence=0.95)
        ghost = self._stream(103.0, [1, 0, 1, 1], confidence=0.6)
        ctx.result.streams = [original, ghost]
        DedupStage().run(ctx)
        assert ctx.result.streams == [original]
