"""Unit tests for the unified StatsAccumulator merge semantics."""

import numpy as np
import pytest

from repro.core.stages.stats import (CACHE_STAT_KEYS, StatsAccumulator,
                                     worse_health)
from repro.robustness.guard import TraceHealth
from repro.types import EpochResult, StreamFault


def _fault(offset=100.0, expected=False, stage="separate"):
    return StreamFault(offset_samples=offset, period_samples=250.0,
                       stage=stage, error_type="RuntimeError",
                       message="boom", expected=expected)


class TestCounters:
    def test_bump_is_a_noop_without_a_cache(self):
        acc = StatsAccumulator(cache_enabled=False)
        acc.bump("kmeans_hits")
        assert acc.cache is None

    def test_bump_counts_into_the_cache(self):
        acc = StatsAccumulator(cache_enabled=True)
        acc.bump("kmeans_hits")
        acc.bump("fold_hits", 3)
        assert acc.cache["kmeans_hits"] == 1
        assert acc.cache["fold_hits"] == 3

    def test_cache_starts_zeroed_over_the_canonical_keys(self):
        acc = StatsAccumulator(cache_enabled=True)
        assert set(acc.cache) == set(CACHE_STAT_KEYS)
        assert all(v == 0 for v in acc.cache.values())

    def test_bump_fidelity_counts(self):
        acc = StatsAccumulator(fidelity={"multilevel_fast": 0})
        acc.bump_fidelity("multilevel_fast")
        acc.bump_fidelity("new_key", 2)
        assert acc.fidelity == {"multilevel_fast": 1, "new_key": 2}

    def test_merge_counts_adds_per_key(self):
        into = {"a": 1}
        out = StatsAccumulator.merge_counts(into, {"a": 2, "b": 5})
        assert out is into
        assert into == {"a": 3, "b": 5}

    def test_merge_timing_adds_per_stage(self):
        into = {"edge": 0.5}
        StatsAccumulator.merge_timing(into, {"edge": 0.25, "fold": 1.0})
        assert into == {"edge": 0.75, "fold": 1.0}


class TestPublish:
    def test_publish_copies_everything_once(self):
        acc = StatsAccumulator(cache_enabled=True,
                               fidelity={"viterbi_banded": 2})
        acc.bump("basis_hits")
        acc.add_time("edge", 0.125)
        acc.note_fault(_fault(expected=True))
        result = acc.publish(EpochResult(duration_s=1.0))
        assert result.stage_timings["edge"] == 0.125
        assert result.cache_stats["basis_hits"] == 1
        assert result.fidelity_stats == {"viterbi_banded": 2}
        assert len(result.degraded_streams) == 1
        # Published dicts are copies: later accumulator use must not
        # retroactively mutate an already-returned result.
        acc.bump("basis_hits")
        assert result.cache_stats["basis_hits"] == 1

    def test_publish_without_cache_leaves_cache_stats_empty(self):
        acc = StatsAccumulator(cache_enabled=False)
        result = acc.publish(EpochResult())
        assert result.cache_stats == {}

    def test_publish_keeps_worse_health(self):
        degraded = TraceHealth(n_samples=10, verdict="degraded")
        clean = TraceHealth(n_samples=10, verdict="clean")
        acc = StatsAccumulator()
        acc.note_health(degraded)
        result = EpochResult()
        result.trace_health = clean
        assert acc.publish(result).trace_health is degraded


class TestAbsorbResult:
    """Regression tests for the chunk-merge fault handling.

    The pre-refactor ``decode_chunked`` merge mutated each chunk's
    faults in place (``fault.offset_samples += shift``), so the
    chunk-local results were corrupted after merging and re-merging
    double-shifted.  ``absorb_result`` must copy.
    """

    def _chunk_result(self):
        result = EpochResult(duration_s=0.5)
        result.stage_timings = {"edge": 0.1, "total": 0.2}
        result.cache_stats = {"fold_hits": 2}
        result.fidelity_stats = {"pregate_fast": 4}
        result.degraded_streams = [_fault(offset=40.0, expected=True),
                                   _fault(offset=70.0, expected=False)]
        return result

    def test_faults_are_copied_not_aliased(self):
        chunk = self._chunk_result()
        acc = StatsAccumulator()
        acc.absorb_result(chunk, offset_shift=1000.0)
        assert acc.faults[0] is not chunk.degraded_streams[0]
        # The source result is untouched (chunk-local coordinates).
        assert chunk.degraded_streams[0].offset_samples == 40.0
        assert acc.faults[0].offset_samples == 1040.0

    def test_expected_flags_survive_the_merge(self):
        chunk = self._chunk_result()
        acc = StatsAccumulator()
        acc.absorb_result(chunk, offset_shift=500.0)
        assert [f.expected for f in acc.faults] == [True, False]
        merged = acc.publish(EpochResult())
        assert [f.expected for f in merged.degraded_streams] \
            == [True, False]
        assert merged.degraded  # the unexpected fault still flags it

    def test_absorbing_twice_does_not_double_shift(self):
        chunk = self._chunk_result()
        acc = StatsAccumulator()
        acc.absorb_result(chunk, offset_shift=100.0)
        acc.absorb_result(chunk, offset_shift=100.0)
        assert [f.offset_samples for f in acc.faults] \
            == [140.0, 170.0, 140.0, 170.0]

    def test_counters_and_timings_accumulate(self):
        acc = StatsAccumulator()
        acc.absorb_result(self._chunk_result())
        acc.absorb_result(self._chunk_result(), offset_shift=10.0)
        assert acc.timings == {"edge": 0.2, "total": 0.4}
        assert acc.cache == {key: (4 if key == "fold_hits" else 0)
                             for key in CACHE_STAT_KEYS}
        assert acc.fidelity == {"pregate_fast": 8}

    def test_cache_stays_none_for_cold_results(self):
        acc = StatsAccumulator()
        cold = EpochResult()
        cold.fidelity_stats = {"pregate_fast": 1}
        acc.absorb_result(cold)
        assert acc.cache is None

    def test_health_merge_keeps_the_worst_chunk(self):
        acc = StatsAccumulator()
        first = EpochResult()
        first.trace_health = TraceHealth(n_samples=10, verdict="clean")
        second = EpochResult()
        second.trace_health = TraceHealth(n_samples=10, verdict="rejected")
        acc.absorb_result(first)
        acc.absorb_result(second)
        acc.absorb_result(first)
        assert acc.trace_health.verdict == "rejected"


class TestWorseHealth:
    @pytest.mark.parametrize("a,b,winner", [
        ("clean", "degraded", "degraded"),
        ("degraded", "rejected", "rejected"),
        ("rejected", "clean", "rejected"),
        ("clean", "clean", "clean"),
    ])
    def test_severity_order(self, a, b, winner):
        ha, hb = TraceHealth(n_samples=10, verdict=a), TraceHealth(n_samples=10, verdict=b)
        assert worse_health(ha, hb).verdict == winner

    def test_none_always_loses(self):
        health = TraceHealth(n_samples=10, verdict="clean")
        assert worse_health(None, health) is health
        assert worse_health(health, None) is health
        assert worse_health(None, None) is None


class TestStageTiming:
    def test_stage_context_manager_accumulates(self):
        acc = StatsAccumulator()
        with acc.stage("detect"):
            np.linalg.eigh(np.eye(8))
        with acc.stage("detect"):
            pass
        assert acc.timings["detect"] > 0.0
