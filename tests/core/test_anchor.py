"""Tests for anchor-bit disambiguation and frame assembly."""

import numpy as np
import pytest

from repro.core.anchor import (assemble_bits, expected_header,
                               resolve_polarity)
from repro.core.viterbi import bits_to_edge_states
from repro.errors import ConfigurationError, DecodeError
from repro.tags.base import build_frame


def observations_for_frame(payload, lead_slots=0, sigma=0.0, seed=0,
                           sign=1.0):
    """Projected observations of a full frame, with optional silence
    before the frame starts."""
    frame = build_frame(payload)
    states = bits_to_edge_states(frame)
    means = np.array([1.0, -1.0, 0.0, 0.0])[states]
    obs = np.concatenate([np.zeros(lead_slots), means]) * sign
    if sigma:
        rng = np.random.default_rng(seed)
        obs = obs + rng.normal(0, sigma, obs.size)
    return obs, frame


class TestResolvePolarity:
    def test_clean_frame(self):
        obs, frame = observations_for_frame([1, 1, 0, 1, 0, 0])
        assembled = resolve_polarity(obs)
        np.testing.assert_array_equal(assembled.bits, frame)
        assert not assembled.flipped
        assert assembled.start_slot == 0
        assert assembled.header_score == 1.0

    def test_inverted_projection_flipped_back(self):
        obs, frame = observations_for_frame([0, 1, 1, 0], sign=-1.0)
        assembled = resolve_polarity(obs)
        np.testing.assert_array_equal(assembled.bits, frame)
        assert assembled.flipped

    def test_leading_silence_skipped(self):
        obs, frame = observations_for_frame([1, 0, 1], lead_slots=7)
        assembled = resolve_polarity(obs)
        assert assembled.start_slot == 7
        np.testing.assert_array_equal(assembled.bits, frame)

    def test_shifted_alias_rejected(self):
        """The classic false lock — inverted and one slot late — must
        lose to the true alignment even when the payload makes its
        header match perfect."""
        # Payload starting with 0 creates the ambiguous case.
        obs, frame = observations_for_frame([0, 0, 1, 1],
                                            lead_slots=4)
        assembled = resolve_polarity(obs)
        assert assembled.start_slot == 4
        assert not assembled.flipped
        np.testing.assert_array_equal(assembled.bits, frame)

    def test_noisy_frame_still_locks(self):
        obs, frame = observations_for_frame([1, 0, 0, 1, 1, 0] * 5,
                                            lead_slots=3, sigma=0.25,
                                            seed=1)
        assembled = resolve_polarity(obs)
        assert assembled.start_slot == 3
        errors = np.count_nonzero(
            assembled.bits[:frame.size] != frame)
        assert errors <= 2

    def test_no_edges_raises(self):
        with pytest.raises(DecodeError):
            resolve_polarity(np.zeros(50))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_polarity(np.empty(0))


class TestAssembleBits:
    def test_min_header_score_enforced(self):
        rng = np.random.default_rng(2)
        garbage = rng.normal(0, 1.0, 60)
        with pytest.raises(DecodeError):
            assemble_bits(garbage, min_header_score=0.99)

    def test_hard_decode_variant(self):
        obs, frame = observations_for_frame([1, 1, 0, 0])
        assembled = assemble_bits(obs, use_viterbi=False)
        np.testing.assert_array_equal(assembled.bits, frame)


class TestExpectedHeader:
    def test_structure(self):
        header = expected_header()
        assert header.size == 9
        np.testing.assert_array_equal(header,
                                      [1, 0, 1, 0, 1, 0, 1, 0, 1])

    def test_custom_length(self):
        header = expected_header(preamble_bits=4)
        np.testing.assert_array_equal(header, [1, 0, 1, 0, 1])
