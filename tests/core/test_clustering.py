"""Tests for k-means clustering and model selection."""

import numpy as np
import pytest

from repro.core.clustering import (bic_score, kmeans,
                                   select_cluster_count)
from repro.errors import ConfigurationError


def gaussian_blobs(centres, n_per, sigma, seed=0):
    rng = np.random.default_rng(seed)
    points = []
    for c in centres:
        points.append(c + rng.normal(0, sigma, n_per)
                      + 1j * rng.normal(0, sigma, n_per))
    return np.concatenate(points)


class TestKMeans:
    def test_recovers_three_blobs(self):
        centres = [0j, 0.1 + 0.05j, -0.1 - 0.05j]
        pts = gaussian_blobs(centres, 60, 0.005)
        result = kmeans(pts, 3, rng=0)
        found = sorted(result.centroids, key=lambda z: z.real)
        expected = sorted(centres, key=lambda z: z.real)
        for f, e in zip(found, expected):
            assert abs(f - e) < 0.01

    def test_labels_consistent_with_centroids(self):
        pts = gaussian_blobs([0j, 1 + 0j], 40, 0.01)
        result = kmeans(pts, 2, rng=1)
        for point, label in zip(pts, result.labels):
            distances = np.abs(result.centroids - point)
            assert label == np.argmin(distances)

    def test_inertia_decreases_with_k(self):
        pts = gaussian_blobs([0j, 1 + 0j, 1j], 30, 0.05)
        inertia_1 = kmeans(pts, 1, rng=2).inertia
        inertia_3 = kmeans(pts, 3, rng=2).inertia
        assert inertia_3 < inertia_1

    def test_cluster_sizes(self):
        pts = gaussian_blobs([0j, 1 + 0j], 25, 0.01)
        result = kmeans(pts, 2, rng=3)
        assert sorted(result.cluster_sizes()) == [25, 25]

    def test_k_equals_n_points(self):
        pts = np.array([0j, 1 + 0j, 2j])
        result = kmeans(pts, 3, rng=4)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            kmeans(np.empty(0, dtype=complex), 2)
        with pytest.raises(ConfigurationError):
            kmeans(np.ones(3, dtype=complex), 0)
        with pytest.raises(ConfigurationError):
            kmeans(np.ones(3, dtype=complex), 5)
        with pytest.raises(ConfigurationError):
            kmeans(np.ones(3, dtype=complex), 2, n_init=0)


class TestSelectClusterCount:
    def test_three_blobs_prefer_three(self):
        """A single tag's rise/fall/hold structure selects k=3."""
        pts = gaussian_blobs([0j, 0.1 + 0.05j, -0.1 - 0.05j], 80,
                             0.006, seed=5)
        result = select_cluster_count(pts, candidates=(3, 9), rng=0)
        assert result.k == 3

    def test_nine_blobs_prefer_nine(self):
        """A 2-way collision's 3x3 lattice selects k=9."""
        e1, e2 = 0.1 + 0.02j, -0.03 + 0.09j
        centres = [a * e1 + b * e2 for a in (-1, 0, 1)
                   for b in (-1, 0, 1)]
        pts = gaussian_blobs(centres, 40, 0.004, seed=6)
        result = select_cluster_count(pts, candidates=(3, 9), rng=1)
        assert result.k == 9

    def test_infeasible_candidates_skipped(self):
        pts = gaussian_blobs([0j, 1 + 0j], 2, 0.01)  # only 4 points
        result = select_cluster_count(pts, candidates=(3, 9), rng=2)
        assert result.k == 3

    def test_no_feasible_candidate(self):
        with pytest.raises(ConfigurationError):
            select_cluster_count(np.ones(2, dtype=complex),
                                 candidates=(9,), rng=0)

    def test_empty_candidates(self):
        with pytest.raises(ConfigurationError):
            select_cluster_count(np.ones(5, dtype=complex),
                                 candidates=())


class TestBicScore:
    def test_improves_with_fit_quality_at_same_k(self):
        tight = gaussian_blobs([0j, 1 + 0j], 50, 0.01, seed=7)
        loose = gaussian_blobs([0j, 1 + 0j], 50, 0.2, seed=7)
        fit_tight = kmeans(tight, 2, rng=0)
        fit_loose = kmeans(loose, 2, rng=0)
        assert bic_score(fit_tight, tight.size) < \
            bic_score(fit_loose, loose.size)

    def test_validation(self):
        pts = np.ones(5, dtype=complex)
        fit = kmeans(pts, 1, rng=0)
        with pytest.raises(ConfigurationError):
            bic_score(fit, 0)
