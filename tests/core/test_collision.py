"""Tests for IQ cluster-based collision detection (Section 3.3)."""

import numpy as np
import pytest

from repro.core.collision import (CollisionReport, detect_collision,
                                  scatter_planarity)
from repro.errors import ConfigurationError


def single_tag_diffs(e, n, sigma, seed=0):
    rng = np.random.default_rng(seed)
    states = rng.integers(-1, 2, n)
    return states * e + (rng.normal(0, sigma, n)
                         + 1j * rng.normal(0, sigma, n))


def collided_diffs(e1, e2, n, sigma, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.integers(-1, 2, n)
    b = rng.integers(-1, 2, n)
    return a * e1 + b * e2 + (rng.normal(0, sigma, n)
                              + 1j * rng.normal(0, sigma, n))


class TestScatterPlanarity:
    def test_collinear_is_flat(self):
        pts = np.array([1 + 1j, -1 - 1j, 2 + 2j, 0j])
        assert scatter_planarity(pts) == pytest.approx(0.0, abs=1e-12)

    def test_isotropic_is_round(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(0, 1, 5000) + 1j * rng.normal(0, 1, 5000)
        assert scatter_planarity(pts) > 0.9

    def test_about_origin_not_mean(self):
        """Points at {0, +e, -e} are symmetric about the origin; a
        mean-centred measure would be fooled by a skewed draw."""
        pts = np.array([0.1 + 0.05j] * 10 + [0j] * 10)
        assert scatter_planarity(pts) < 0.01

    def test_tiny_input(self):
        assert scatter_planarity(np.array([1 + 0j])) == 0.0


class TestDetectCollision:
    def test_single_tag_not_collision(self):
        diffs = single_tag_diffs(0.1 + 0.04j, 120, 0.004)
        report = detect_collision(diffs, rng=0)
        assert not report.is_collision
        assert report.estimated_colliders == 1

    def test_two_way_collision_detected(self):
        diffs = collided_diffs(0.1 + 0.02j, -0.03 + 0.09j, 150, 0.004)
        report = detect_collision(diffs, rng=1)
        assert report.is_collision
        assert report.estimated_colliders == 2

    def test_weak_second_collider_still_detected(self):
        """The regime that motivated the noise-aware threshold: one
        strong and one weak collider."""
        diffs = collided_diffs(0.13 + 0.02j, 0.01 - 0.04j, 200, 0.003,
                               seed=3)
        report = detect_collision(diffs, noise_scale=0.003, rng=2)
        assert report.is_collision

    def test_noise_does_not_fake_collision(self):
        """Heavy noise on a single tag must not read as a collision."""
        hits = 0
        for seed in range(5):
            diffs = single_tag_diffs(0.1 + 0.04j, 150, 0.02, seed=seed)
            report = detect_collision(diffs, noise_scale=0.02,
                                      rng=seed)
            hits += int(report.is_collision)
        assert hits == 0

    def test_parallel_vectors_undetectable(self):
        """Anti-parallel edge vectors are geometrically degenerate —
        the honest outcome is 'no collision' (the paper's Table 2
        accuracy losses come from exactly this)."""
        diffs = collided_diffs(0.1 + 0.0j, -0.05 - 0.0j, 150, 0.004,
                               seed=4)
        report = detect_collision(diffs, rng=3)
        assert not report.is_collision

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            detect_collision(np.ones(2, dtype=complex))
        with pytest.raises(ConfigurationError):
            detect_collision(np.ones(20, dtype=complex),
                             planarity_threshold=1.5)


class TestCollisionReport:
    def test_estimated_colliders_from_cluster_count(self):
        from repro.core.clustering import KMeansResult
        fake = KMeansResult(centroids=np.zeros(9, dtype=complex),
                            labels=np.zeros(9, dtype=np.int64),
                            inertia=0.0)
        report = CollisionReport(is_collision=True, n_clusters=9,
                                 planarity=0.5, kmeans=fake)
        assert report.estimated_colliders == 2
        report27 = CollisionReport(is_collision=True, n_clusters=27,
                                   planarity=0.5, kmeans=fake)
        assert report27.estimated_colliders == 3
