"""Tests for IQ-differential edge detection (Section 3.1)."""

import numpy as np
import pytest

from repro.core.edges import EdgeDetector, EdgeDetectorConfig
from repro.errors import ConfigurationError, SignalError
from repro.phy.modulation import nrz_waveform
from repro.types import IQTrace


def make_trace(bits, coeff=0.1 + 0.05j, env=0.5 + 0.3j,
               offset=100.0, period=250.0, n=None, noise=0.0, seed=0):
    n = n or int(offset + (len(bits) + 2) * period)
    wave = nrz_waveform(bits, offset, period, n)
    samples = env + coeff * wave
    if noise:
        rng = np.random.default_rng(seed)
        samples = samples + (rng.normal(0, noise / np.sqrt(2), n)
                             + 1j * rng.normal(0, noise / np.sqrt(2),
                                               n))
    return IQTrace(samples=samples, sample_rate_hz=2.5e6)


class TestDetect:
    def test_alternating_bits_all_edges_found(self):
        bits = [1, 0, 1, 0, 1, 0]
        trace = make_trace(bits, noise=0.005)
        edges = EdgeDetector().detect(trace)
        positions = np.array(sorted(e.position for e in edges))
        expected = 100.0 + 250.0 * np.arange(6)
        # Every true transition detected within one edge width; low-
        # magnitude response shoulders may add a few extra detections,
        # which the fold stage later discards as spurious.
        for want in expected:
            assert np.min(np.abs(positions - want)) <= 3
        assert len(edges) <= 12

    def test_constant_bits_single_edge(self):
        trace = make_trace([1, 1, 1, 1], noise=0.005)
        edges = EdgeDetector().detect(trace)
        assert len(edges) == 1

    def test_differential_matches_coefficient(self):
        coeff = 0.12 - 0.07j
        trace = make_trace([1, 0], coeff=coeff, noise=0.002)
        edges = EdgeDetector().detect(trace)
        by_strength = sorted(edges, key=lambda e: -e.strength)[:2]
        rise, fall = sorted(by_strength, key=lambda e: e.position)
        assert abs(rise.differential - coeff) < 0.02
        assert abs(fall.differential + coeff) < 0.02

    def test_background_cancelled(self):
        """A second tag's constant reflection must not shift the
        detected differential (the point of Section 3.1)."""
        coeff = 0.1 + 0.02j
        trace = make_trace([1, 0], coeff=coeff, env=1.5 - 0.8j,
                           noise=0.002)
        edges = EdgeDetector().detect(trace)
        assert abs(edges[0].differential - coeff) < 0.02

    def test_no_edges_in_pure_noise(self):
        rng = np.random.default_rng(1)
        samples = 0.5 + 0.3j + (rng.normal(0, 0.01, 20_000)
                                + 1j * rng.normal(0, 0.01, 20_000))
        trace = IQTrace(samples=samples, sample_rate_hz=2.5e6)
        edges = EdgeDetector().detect(trace)
        assert len(edges) <= 2  # a rare noise spike is acceptable

    def test_duplicate_detections_merged(self):
        """One physical transition yields exactly one edge record."""
        trace = make_trace([1, 0, 1, 0, 1, 0, 1, 0], noise=0.008)
        edges = EdgeDetector().detect(trace)
        positions = np.array([e.position for e in edges])
        assert np.all(np.diff(positions) > 100)

    def test_two_tags_nearby_edges_not_merged(self):
        """Distinct tags' edges a few samples apart stay separate when
        their IQ vectors differ."""
        n = 2000
        wave_a = nrz_waveform([1], 500.0, 1000.0, n)
        wave_b = nrz_waveform([1], 508.0, 1000.0, n)
        samples = 0.5 + (0.1 + 0.02j) * wave_a + (0.02 - 0.1j) * wave_b
        trace = IQTrace(samples=samples, sample_rate_hz=2.5e6)
        edges = EdgeDetector().detect(trace)
        positions = [e.position for e in edges]
        # Both true edges present (an artefact between them is
        # tolerable; the fold rejects unmatched detections later).
        assert any(abs(p - 500) <= 2 for p in positions)
        assert any(abs(p - 508) <= 2 for p in positions)
        assert len(edges) <= 3

    def test_too_short_trace_rejected(self):
        trace = IQTrace(samples=np.ones(5, dtype=complex),
                        sample_rate_hz=1.0)
        with pytest.raises(SignalError):
            EdgeDetector().detect(trace)


class TestRefineDifferentials:
    def test_bounded_by_neighbor_edges(self):
        """The averaging window must stop at the neighbouring edge."""
        n = 3000
        wave = nrz_waveform([1, 0], 1000.0, 500.0, n)
        samples = (0.5 + 0.3j) + (0.1 + 0j) * wave
        trace = IQTrace(samples=samples, sample_rate_hz=2.5e6)
        det = EdgeDetector(EdgeDetectorConfig(max_refine_window=10_000))
        diffs = det.refine_differentials(
            trace, np.array([1000, 1500]),
            bounds=np.array([1000, 1500]))
        assert abs(diffs[0] - 0.1) < 0.01
        assert abs(diffs[1] + 0.1) < 0.01

    def test_empty_positions(self):
        trace = make_trace([1, 0])
        out = EdgeDetector().refine_differentials(trace,
                                                  np.empty(0,
                                                           dtype=int))
        assert out.size == 0

    def test_out_of_bounds_position(self):
        trace = make_trace([1, 0])
        with pytest.raises(SignalError):
            EdgeDetector().refine_differentials(
                trace, np.array([10 ** 9]))


class TestConfigValidation:
    def test_bad_values(self):
        with pytest.raises(ConfigurationError):
            EdgeDetectorConfig(diff_window=0)
        with pytest.raises(ConfigurationError):
            EdgeDetectorConfig(guard=-1)
        with pytest.raises(ConfigurationError):
            EdgeDetectorConfig(threshold_factor=0)
        with pytest.raises(ConfigurationError):
            EdgeDetectorConfig(min_separation=0)
        with pytest.raises(ConfigurationError):
            EdgeDetectorConfig(merge_radius=-1)
        with pytest.raises(ConfigurationError):
            EdgeDetectorConfig(max_refine_window=0)
