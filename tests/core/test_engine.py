"""Tests of the parallel batch-decode engine."""

import numpy as np
import pytest

from repro.core.engine import BatchDecoder, _decode_task
from repro.core.pipeline import LFDecoder, LFDecoderConfig
from repro.errors import ConfigurationError
from repro.phy.channel import ChannelModel, random_coefficients
from repro.reader.simulator import NetworkSimulator
from repro.tags.lf_tag import LFTag
from repro.types import SimulationProfile, TagConfig
from repro.utils.rng import spawn_seed_sequences

PROFILE = SimulationProfile.fast()


def make_capture(seed, n_tags=3, duration_s=0.006):
    gen = np.random.default_rng(seed)
    coeffs = random_coefficients(n_tags, rng=gen)
    channel = ChannelModel({k: coeffs[k] for k in range(n_tags)},
                           environment_offset=0.5 + 0.3j)
    tags = [LFTag(TagConfig(tag_id=k, bitrate_bps=10e3,
                            channel_coefficient=coeffs[k]),
                  profile=PROFILE,
                  rng=np.random.default_rng(gen.integers(0, 2 ** 63)))
            for k in range(n_tags)]
    sim = NetworkSimulator(tags, channel, profile=PROFILE,
                           noise_std=0.01, rng=gen)
    return sim.run_epoch(duration_s)


@pytest.fixture(scope="module")
def traces():
    return [make_capture(seed).trace for seed in (11, 12, 13)]


@pytest.fixture(scope="module")
def config():
    return LFDecoderConfig(candidate_bitrates_bps=[10e3],
                           profile=PROFILE)


def _stream_fingerprint(result):
    return [(s.bits.tobytes(), round(s.offset_samples, 6),
             round(s.period_samples, 6)) for s in result.streams]


def test_results_ordered_and_indexed(traces, config):
    engine = BatchDecoder(config=config, seed=3, max_workers=1)
    results = engine.decode_epochs(traces)
    assert [r.epoch_index for r in results] == [0, 1, 2]
    assert all(r.n_streams >= 1 for r in results)


def test_same_seed_same_results_any_worker_count(traces, config):
    serial = BatchDecoder(config=config, seed=3,
                          max_workers=1).decode_epochs(traces)
    pooled = BatchDecoder(config=config, seed=3,
                          max_workers=2).decode_epochs(traces)
    assert [_stream_fingerprint(r) for r in serial] \
        == [_stream_fingerprint(r) for r in pooled]


def test_different_seeds_are_independent_per_task(traces, config):
    """Task results depend only on (root seed, index), not on what the
    engine decoded before them."""
    seqs = spawn_seed_sequences(3, len(traces))
    direct = [_decode_task(i, trace, seqs[i], config=config)
              for i, trace in enumerate(traces)]
    batch = BatchDecoder(config=config, seed=3,
                         max_workers=1).decode_epochs(traces)
    assert [_stream_fingerprint(r) for r in direct] \
        == [_stream_fingerprint(r) for r in batch]


def test_matches_single_decoder_output(traces, config):
    """The batch engine decodes each epoch exactly like a standalone
    LFDecoder seeded with the same per-task sequence."""
    seqs = spawn_seed_sequences(7, len(traces))
    batch = BatchDecoder(config=config, seed=7,
                         max_workers=1).decode_epochs(traces)
    for i, trace in enumerate(traces):
        solo = LFDecoder(config, rng=np.random.default_rng(seqs[i]))
        assert _stream_fingerprint(solo.decode_epoch(trace)) \
            == _stream_fingerprint(batch[i])


def test_iter_decode_streams_in_order(traces, config):
    engine = BatchDecoder(config=config, seed=3, max_workers=1)
    indices = [r.epoch_index for r in engine.iter_decode(traces)]
    assert indices == [0, 1, 2]


def test_stage_timings_populated(traces, config):
    engine = BatchDecoder(config=config, seed=3, max_workers=1)
    results = engine.decode_epochs(traces)
    for result in results:
        assert set(result.stage_timings) >= {"edge", "fold", "total"}
        assert result.stage_timings["total"] > 0.0
        assert result.stage_timings["total"] >= \
            result.stage_timings["edge"]
    agg = engine.aggregate_timings(results)
    assert agg["total"] == pytest.approx(
        sum(r.stage_timings["total"] for r in results))


def test_transport_invariance(traces, config):
    """Shared-memory and pickle transports decode identical bits —
    the knob only changes how sample bytes reach the workers."""
    serial = BatchDecoder(config=config, seed=3,
                          max_workers=1).decode_epochs(traces)
    shm = BatchDecoder(config=config, seed=3, max_workers=2,
                       use_shared_memory=True).decode_epochs(traces)
    pickled = BatchDecoder(config=config, seed=3, max_workers=2,
                           use_shared_memory=False).decode_epochs(traces)
    fingerprints = [_stream_fingerprint(r) for r in serial]
    assert [_stream_fingerprint(r) for r in shm] == fingerprints
    assert [_stream_fingerprint(r) for r in pickled] == fingerprints


def test_forced_shared_memory_unavailable_raises(config, monkeypatch):
    import repro.core.engine as engine_module
    monkeypatch.setattr(engine_module, "_shared_memory", None)
    with pytest.raises(ConfigurationError):
        BatchDecoder(config=config, use_shared_memory=True)
    # Auto-detection degrades to the pickle transport instead.
    engine = BatchDecoder(config=config, max_workers=1)
    assert engine.use_shared_memory is False


def test_iter_decode_streams_lazily_from_generator(traces, config):
    """The sliding submission window keeps an unbounded input stream
    from piling up: with 2 workers at most ~2x2 tasks are in flight,
    so the first result arrives before the input is exhausted."""
    stream = traces * 2  # 6 epochs
    pulled = []

    def producer():
        for i, trace in enumerate(stream):
            pulled.append(i)
            yield trace

    engine = BatchDecoder(config=config, seed=3, max_workers=2)
    iterator = engine.iter_decode(producer())
    first = next(iterator)
    assert first.epoch_index == 0
    assert len(pulled) < len(stream), \
        "engine exhausted the input before yielding anything"
    rest = list(iterator)
    assert [r.epoch_index for r in rest] == [1, 2, 3, 4, 5]
    assert len(pulled) == len(stream)


def test_empty_batch(config):
    engine = BatchDecoder(config=config, seed=3, max_workers=1)
    assert engine.decode_epochs([]) == []


def test_invalid_worker_count(config):
    with pytest.raises(ConfigurationError):
        BatchDecoder(config=config, max_workers=0)
