"""Supervision tests for the batch engine: crashes, hangs, retries,
and resource cleanup.

The crash/hang helpers monkeypatch :func:`repro.core.engine._decode_task`
in the parent process; the pool's workers are forked *after* the patch
(pools spawn lazily at first submit, and respawned pools re-fork), so
the sabotage propagates into every worker generation.
"""

import glob
import os
import time

import numpy as np
import pytest

from repro.core import engine as engine_module
from repro.core.engine import BatchDecoder, EpochOutcome, _decode_task
from repro.utils.rng import spawn_seed_sequences

from ..conftest import build_decoder, build_network

N_EPOCHS = 6

if engine_module._shared_memory is None:  # pragma: no cover
    pytest.skip("platform lacks multiprocessing.shared_memory",
                allow_module_level=True)


@pytest.fixture(scope="module")
def config(fast_profile):
    return build_decoder(fast_profile).config


@pytest.fixture(scope="module")
def captures(fast_profile):
    """Single-tag epochs with ground truth (cheap, non-trivial)."""
    return [build_network(1, fast_profile, seed=20 + k).run_epoch(0.006)
            for k in range(N_EPOCHS)]


@pytest.fixture(scope="module")
def traces(captures):
    return [c.trace for c in captures]


@pytest.fixture(scope="module")
def baseline(config, traces):
    """Serial reference results for the same seeds."""
    seqs = spawn_seed_sequences(0, len(traces))
    return [_decode_task(i, t, seqs[i], config=config)
            for i, t in enumerate(traces)]


def _assert_matches_baseline(outcome, reference):
    assert outcome.result is not None
    assert outcome.result.epoch_index == reference.epoch_index
    assert len(outcome.result.streams) == len(reference.streams)
    for a, b in zip(outcome.result.streams, reference.streams):
        np.testing.assert_array_equal(a.bits, b.bits)


class TestWorkerCrash:
    def test_crashing_task_quarantined_batch_completes(
            self, config, traces, baseline, monkeypatch):
        victim = 2

        def crashing(index, trace, seed_seq, config=None):
            if index == victim:
                os._exit(17)
            return _decode_task(index, trace, seed_seq, config=config)

        monkeypatch.setattr(engine_module, "_decode_task", crashing)
        engine = BatchDecoder(config=config, seed=0, max_workers=2)
        outcomes = engine.decode_outcomes(traces)
        assert [o.epoch_index for o in outcomes] == \
            list(range(len(traces)))
        assert outcomes[victim].status == "failed"
        assert outcomes[victim].result is None
        assert "WorkerCrashError" in outcomes[victim].error
        for i, outcome in enumerate(outcomes):
            if i != victim:
                _assert_matches_baseline(outcome, baseline[i])

    def test_crash_surfaces_as_engine_fault_in_iter_decode(
            self, config, traces, monkeypatch):
        def crashing(index, trace, seed_seq, config=None):
            if index == 1:
                os._exit(17)
            return _decode_task(index, trace, seed_seq, config=config)

        monkeypatch.setattr(engine_module, "_decode_task", crashing)
        engine = BatchDecoder(config=config, seed=0, max_workers=2)
        results = engine.decode_epochs(traces)
        assert len(results) == len(traces)
        failed = results[1]
        assert failed.degraded
        assert failed.degraded_streams[0].stage == "engine"
        assert not failed.streams


class TestHang:
    def test_hung_task_times_out_batch_completes(
            self, config, traces, baseline, monkeypatch):
        victim = 1

        def hanging(index, trace, seed_seq, config=None):
            if index == victim:
                time.sleep(300)
            return _decode_task(index, trace, seed_seq, config=config)

        monkeypatch.setattr(engine_module, "_decode_task", hanging)
        engine = BatchDecoder(config=config, seed=0, max_workers=2,
                              task_timeout_s=1.0)
        start = time.monotonic()
        outcomes = engine.decode_outcomes(traces)
        elapsed = time.monotonic() - start
        assert [o.epoch_index for o in outcomes] == \
            list(range(len(traces)))
        assert outcomes[victim].status == "failed"
        assert "TaskHangError" in outcomes[victim].error
        # Two strikes at 1 s each plus overhead — not 300 s.
        assert elapsed < 60
        for i, outcome in enumerate(outcomes):
            if i != victim:
                _assert_matches_baseline(outcome, baseline[i])


class TestRetry:
    def test_transient_worker_error_retried(self, config, traces,
                                            baseline, monkeypatch,
                                            tmp_path):
        marker = tmp_path / "failed-once"

        def flaky(index, trace, seed_seq, config=None):
            if index == 3 and not marker.exists():
                marker.write_text("x")
                raise RuntimeError("transient glitch")
            return _decode_task(index, trace, seed_seq, config=config)

        monkeypatch.setattr(engine_module, "_decode_task", flaky)
        engine = BatchDecoder(config=config, seed=0, max_workers=2,
                              max_attempts=3)
        outcomes = engine.decode_outcomes(traces)
        assert outcomes[3].attempts >= 2
        for i, outcome in enumerate(outcomes):
            _assert_matches_baseline(outcome, baseline[i])

    def test_persistent_error_fails_after_max_attempts(
            self, config, traces, monkeypatch):
        def broken(index, trace, seed_seq, config=None):
            if index == 0:
                raise ValueError("permanently broken epoch")
            return _decode_task(index, trace, seed_seq, config=config)

        monkeypatch.setattr(engine_module, "_decode_task", broken)
        engine = BatchDecoder(config=config, seed=0, max_workers=2,
                              max_attempts=2, retry_backoff_s=0.01)
        outcomes = engine.decode_outcomes(traces)
        assert outcomes[0].status == "failed"
        assert "ValueError" in outcomes[0].error
        assert outcomes[0].attempts == 2

    def test_serial_path_retries_and_fails_identically(
            self, config, traces, monkeypatch):
        calls = []

        def broken(index, trace, seed_seq, config=None):
            calls.append(index)
            raise ValueError("nope")

        monkeypatch.setattr(engine_module, "_decode_task", broken)
        engine = BatchDecoder(config=config, seed=0, max_workers=1,
                              max_attempts=2, retry_backoff_s=0.0)
        outcomes = engine.decode_outcomes(traces[:2])
        assert [o.status for o in outcomes] == ["failed", "failed"]
        assert calls == [0, 0, 1, 1]


class TestOutcomeStatuses:
    def test_clean_epochs_report_ok(self, config, traces):
        engine = BatchDecoder(config=config, seed=0, max_workers=1)
        outcomes = engine.decode_outcomes(traces[:2])
        assert all(isinstance(o, EpochOutcome) for o in outcomes)
        assert all(o.status == "ok" and o.ok for o in outcomes)
        assert all(o.attempts == 1 for o in outcomes)

    def test_repaired_epoch_reports_degraded(self, config, traces):
        trace = traces[0].slice(0, len(traces[0]))
        trace.allow_nonfinite = True
        trace.samples = np.array(trace.samples, copy=True)
        trace.samples[100:110] = np.nan
        engine = BatchDecoder(config=config, seed=0, max_workers=1)
        outcome, = engine.decode_outcomes([trace])
        assert outcome.status == "degraded"
        assert outcome.result.trace_health.verdict == "degraded"


def _shm_blocks():
    return set(glob.glob("/dev/shm/psm_*"))


class TestSharedMemoryHygiene:
    def test_abandoned_iteration_leaks_no_blocks(self, config, traces):
        before = _shm_blocks()
        engine = BatchDecoder(config=config, seed=0, max_workers=2,
                              use_shared_memory=True)
        iterator = engine.iter_decode(traces)
        next(iterator)
        iterator.close()  # consumer walks away mid-batch
        assert _shm_blocks() == before

    def test_crash_path_leaks_no_blocks(self, config, traces,
                                        monkeypatch):
        def crashing(index, trace, seed_seq, config=None):
            if index == 2:
                os._exit(17)
            return _decode_task(index, trace, seed_seq, config=config)

        monkeypatch.setattr(engine_module, "_decode_task", crashing)
        before = _shm_blocks()
        engine = BatchDecoder(config=config, seed=0, max_workers=2,
                              use_shared_memory=True)
        engine.decode_outcomes(traces)
        assert _shm_blocks() == before
