"""Per-stream fault isolation and session-cache quarantine tests."""

import numpy as np
import pytest

from repro.analysis.throughput import match_streams
from repro.core.pipeline import LFDecoder, LFDecoderConfig
from repro.core.session import SessionConfig, SessionState
from repro.core.stages.tracking import TrackStage
from repro.phy.channel import ChannelModel
from repro.reader.simulator import NetworkSimulator
from repro.tags.base import FixedOffsetModel
from repro.tags.lf_tag import LFTag
from repro.types import TagConfig

from ..conftest import build_decoder, build_network


class TestThreeWayCollisionFallback:
    """Three tags on one grid: the parallelogram separator cannot split
    them (Section 3.4 handles two), so the decoder must surface an
    unresolvable-collision fault with the collider count — while every
    stream on *other* grids still decodes."""

    @pytest.fixture(scope="class")
    def capture(self, fast_profile):
        gen = np.random.default_rng(4)
        base = 0.11 + 0.02j
        unit = base / abs(base)
        coeffs = {
            0: base,
            1: complex(0.09 * np.exp(1j * np.deg2rad(75)) * unit),
            2: complex(0.10 * np.exp(1j * np.deg2rad(150)) * unit),
            3: complex(0.12 * np.exp(1j * np.deg2rad(40))),
        }
        channel = ChannelModel(coeffs, environment_offset=0.5 + 0.3j)
        tags = []
        for k in range(4):
            # Tags 0-2 share an offset and run drift-free so their bit
            # grids coincide exactly; tag 3 sits on its own grid.
            offset = 6e-4 if k < 3 else 1.45e-3
            drift = 0.0 if k < 3 else 20.0
            tags.append(LFTag(
                TagConfig(tag_id=k, bitrate_bps=10e3,
                          channel_coefficient=coeffs[k],
                          clock_drift_ppm=drift),
                offset_model=FixedOffsetModel(offset),
                profile=fast_profile,
                rng=np.random.default_rng(gen.integers(0, 2 ** 63))))
        sim = NetworkSimulator(
            tags, channel, profile=fast_profile, noise_std=0.008,
            rng=np.random.default_rng(gen.integers(0, 2 ** 63)))
        return sim.run_epoch(0.012)

    @pytest.fixture(scope="class")
    def result(self, capture, fast_profile):
        return build_decoder(fast_profile).decode_epoch(capture.trace)

    def test_unresolvable_fault_reports_three_colliders(self, result):
        faults = [f for f in result.degraded_streams
                  if f.error_type == "CollisionUnresolvableError"]
        assert faults
        assert all(f.stage == "separate" for f in faults)
        assert all(not f.expected for f in faults)
        assert any(f.n_colliders >= 3 for f in faults)
        assert result.degraded

    def test_other_grid_still_decodes(self, capture, result):
        matches = {m.tag_id: m for m in match_streams(capture, result)}
        assert matches[3].matched
        assert matches[3].bit_errors / max(matches[3].bits_sent, 1) \
            < 0.05


class TestStreamFaultIsolation:
    def test_unexpected_exception_confined_to_one_stream(
            self, fast_profile, monkeypatch):
        sim = build_network(4, fast_profile, seed=2)
        capture = sim.run_epoch(0.01)
        decoder = build_decoder(fast_profile)
        clean = decoder.decode_epoch(capture.trace)
        clean_matched = sum(m.matched
                            for m in match_streams(capture, clean))
        assert clean_matched == 4

        original = TrackStage.run
        state = {"calls": 0}

        def sabotaged(self, ctx):
            state["calls"] += 1
            if state["calls"] == 2:
                raise RuntimeError("synthetic stage bug")
            return original(self, ctx)

        monkeypatch.setattr(TrackStage, "run", sabotaged)
        result = build_decoder(fast_profile).decode_epoch(capture.trace)
        faults = [f for f in result.degraded_streams
                  if f.error_type == "RuntimeError"]
        assert len(faults) == 1
        assert not faults[0].expected
        assert "synthetic stage bug" in faults[0].message
        assert result.degraded
        # The other hypotheses decoded despite the mid-epoch blow-up.
        matched = sum(m.matched for m in match_streams(capture, result))
        assert matched >= clean_matched - 1

    def test_routine_gate_failures_stay_expected(self, fast_profile):
        """A healthy multi-tag decode may abandon junk hypotheses, but
        those are expected faults and never flip ``degraded``."""
        sim = build_network(4, fast_profile, seed=5)
        capture = sim.run_epoch(0.01)
        result = build_decoder(fast_profile).decode_epoch(capture.trace)
        assert all(f.expected for f in result.degraded_streams)
        assert not result.degraded


class TestSessionQuarantine:
    def _tracked_state(self, max_invalidations=3):
        state = SessionState(SessionConfig(
            max_invalidations=max_invalidations))
        diffs = np.array([0.1 + 0.05j] * 8 + [-0.1 - 0.05j] * 8)
        tracker = state.observe(None, period_samples=250.0,
                                offset_samples=10.0,
                                differentials=diffs)
        state.end_epoch({})
        return state, tracker, diffs

    def test_repeated_invalidation_quarantines(self):
        state, tracker, _ = self._tracked_state(max_invalidations=3)
        for _ in range(2):
            state.note_invalidation(tracker)
            assert not tracker.quarantined
        state.note_invalidation(tracker)
        assert tracker.quarantined
        assert state.n_quarantined == 1

    def test_warm_success_resets_the_count(self):
        state, tracker, _ = self._tracked_state(max_invalidations=3)
        state.note_invalidation(tracker)
        state.note_invalidation(tracker)
        state.note_warm_success(tracker)
        state.note_invalidation(tracker)
        assert not tracker.quarantined

    def test_quarantined_tracker_is_invisible(self):
        state, tracker, diffs = self._tracked_state(max_invalidations=1)
        state.note_invalidation(tracker)
        assert tracker.quarantined
        state.begin_epoch()
        assert state.warm_hints() == []
        assert state.match(250.0, 10.0, diffs) is None

    def test_quarantined_tracker_dropped_and_stream_reseeds_cold(self):
        state, tracker, diffs = self._tracked_state(max_invalidations=1)
        state.note_invalidation(tracker)
        state.begin_epoch()
        # The stream decodes cold and re-registers as a fresh tracker.
        fresh = state.observe(None, period_samples=250.0,
                              offset_samples=10.0, differentials=diffs)
        assert fresh is not tracker
        state.end_epoch({})
        assert tracker not in state.trackers
        assert fresh in state.trackers
