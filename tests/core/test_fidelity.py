"""Fidelity policy semantics: knob validation, stats accounting."""

import pytest

from repro.core.fidelity import (FIDELITY_STAT_KEYS, FidelityPolicy,
                                 escalation_rate, merge_fidelity_stats)
from repro.errors import ConfigurationError


class TestPolicyFlags:
    def test_default_policy_is_active(self):
        assert FidelityPolicy().active

    def test_force_full_deactivates(self):
        assert not FidelityPolicy(force_full=True).active

    def test_disabled_deactivates(self):
        assert not FidelityPolicy(enabled=False).active

    def test_full_constructor_matches_force_full(self):
        assert FidelityPolicy.full() == FidelityPolicy(force_full=True)
        assert not FidelityPolicy.full().active

    def test_policy_is_frozen(self):
        with pytest.raises(AttributeError):
            FidelityPolicy().pregate = False


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"pregate_margin": 0.0},
        {"pregate_margin": 1.0},
        {"pregate_margin_warm": 1.5},
        {"subsample_cap": -1},
        {"subsample_cap": 16},       # too small for 9 clusters
        {"confidence_gap": 1.0},
        {"dispersion_eps": 0.0},
        {"dispersion_fraction": 1.0},
        {"viterbi_band_margin": -1e-6},
        {"bounded_min_points": 1},
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FidelityPolicy(**kwargs)

    def test_zero_subsample_cap_disables_subsampling(self):
        # 0 is the documented off-switch, not a degenerate cap.
        assert FidelityPolicy(subsample_cap=0).subsample_cap == 0


class TestStats:
    def test_new_stats_covers_every_key(self):
        stats = FidelityPolicy().new_stats()
        assert set(stats) == set(FIDELITY_STAT_KEYS)
        assert all(v == 0 for v in stats.values())

    def test_merge_accumulates_and_returns_target(self):
        into = {"pregate_fast": 2}
        out = merge_fidelity_stats(into, {"pregate_fast": 3,
                                          "viterbi_exact": 1})
        assert out is into
        assert into == {"pregate_fast": 5, "viterbi_exact": 1}

    def test_escalation_rate_mixes_all_gate_pairs(self):
        stats = {"pregate_fast": 3, "pregate_escalations": 1,
                 "viterbi_banded": 4, "viterbi_exact": 0}
        assert escalation_rate(stats) == pytest.approx(1 / 8)

    def test_escalation_rate_ignores_non_gate_counters(self):
        stats = {"pregate_fast": 1, "bounded_lloyd_runs": 100}
        assert escalation_rate(stats) == 0.0

    def test_dead_fast_paths_read_as_full_escalation(self):
        """An all-zero dict means no gate ever fired; that must look
        like a regression (rate 1.0), not like a perfect fast path."""
        assert escalation_rate({}) == 1.0
        assert escalation_rate(FidelityPolicy().new_stats()) == 1.0
