"""Tests for eye-pattern folding and stream hypothesis search."""

import numpy as np
import pytest

from repro.core.folding import (FoldingConfig, analog_fold_search,
                                find_stream_hypotheses, fold_histogram)
from repro.errors import ConfigurationError
from repro.types import DetectedEdge


def edges_at(positions):
    return [DetectedEdge(position=int(p), differential=0.1 + 0j)
            for p in positions]


class TestFoldHistogram:
    def test_periodic_positions_peak(self):
        positions = 40.0 + 250.0 * np.arange(30)
        counts, width = fold_histogram(positions, 250.0, 3.0)
        assert counts.max() == 30

    def test_bin_width_tiles_period(self):
        _, width = fold_histogram(np.array([1.0]), 250.0, 3.0)
        assert (250.0 / width) == pytest.approx(round(250.0 / width))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fold_histogram(np.array([1.0]), 0.0, 3.0)


class TestFindStreamHypotheses:
    def test_single_stream_recovered(self):
        positions = 40.0 + 250.0 * np.arange(20)
        hyps = find_stream_hypotheses(edges_at(positions), [250.0])
        assert len(hyps) == 1
        assert hyps[0].period_samples == 250.0
        assert len(hyps[0].edge_indices) == 20
        assert hyps[0].offset_samples == pytest.approx(40.0, abs=3)

    def test_two_streams_different_offsets(self):
        a = 40.0 + 250.0 * np.arange(20)
        b = 150.0 + 250.0 * np.arange(20)
        hyps = find_stream_hypotheses(edges_at(np.concatenate([a, b])),
                                      [250.0])
        assert len(hyps) == 2
        offsets = sorted(h.offset_samples % 250 for h in hyps)
        assert offsets[0] == pytest.approx(40.0, abs=3)
        assert offsets[1] == pytest.approx(150.0, abs=3)

    def test_spurious_edges_unclaimed(self):
        stream = 40.0 + 250.0 * np.arange(20)
        rng = np.random.default_rng(0)
        noise = rng.uniform(0, 5000, 8)
        hyps = find_stream_hypotheses(
            edges_at(np.concatenate([stream, noise])), [250.0])
        claimed = set()
        for h in hyps:
            claimed.update(h.edge_indices)
        # Most stream edges claimed; most noise edges not.
        assert len(claimed & set(range(20))) >= 18
        assert len(claimed & set(range(20, 28))) <= 3

    def test_too_few_edges_no_stream(self):
        positions = 40.0 + 250.0 * np.arange(3)
        hyps = find_stream_hypotheses(edges_at(positions), [250.0],
                                      FoldingConfig(min_edges=5))
        assert hyps == []

    def test_drifting_stream_tracked(self):
        """A 200 ppm period error must not break matching."""
        period = 250.0 * (1 + 200e-6)
        positions = 40.0 + period * np.arange(80)
        hyps = find_stream_hypotheses(edges_at(positions), [250.0])
        assert len(hyps) == 1
        assert len(hyps[0].edge_indices) >= 75

    def test_slow_tag_not_aliased_as_fast(self):
        """Edges at 2x the period must not register at the fast rate
        (the consecutive-edge test of Section 3.2)."""
        positions = 40.0 + 500.0 * np.arange(12)  # a 500-period tag
        hyps = find_stream_hypotheses(edges_at(positions),
                                      [250.0, 500.0])
        assert len(hyps) == 1
        assert hyps[0].period_samples == pytest.approx(500.0,
                                                       rel=5e-4)

    def test_fast_rate_claimed_before_slow(self):
        positions = 40.0 + 250.0 * np.arange(40)
        hyps = find_stream_hypotheses(edges_at(positions),
                                      [250.0, 500.0])
        periods = [h.period_samples for h in hyps]
        assert any(abs(p - 250.0) < 0.2 for p in periods)
        # The fast stream claims its edges; no leftover slow stream of
        # meaningful size should exist.
        fast = next(h for h in hyps
                    if abs(h.period_samples - 250.0) < 0.2)
        assert len(fast.edge_indices) >= 38

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            find_stream_hypotheses([], [])
        with pytest.raises(ConfigurationError):
            find_stream_hypotheses(edges_at([1]), [-5.0])


class TestAnalogFoldSearch:
    def test_finds_buried_stream(self):
        """Periodic energy below any per-edge threshold still folds up."""
        rng = np.random.default_rng(0)
        n = 50_000
        energy = rng.exponential(1.0, n)  # noise energy floor
        grid = (137 + 250 * np.arange(n // 250)).astype(int)
        for pos in grid:
            energy[pos - 1: pos + 2] += 2.0  # weak periodic bump
        hyps = analog_fold_search(energy, [250.0])
        assert len(hyps) == 1
        assert hyps[0].offset_samples % 250 == pytest.approx(137, abs=4)

    def test_no_stream_in_noise(self):
        rng = np.random.default_rng(1)
        energy = rng.exponential(1.0, 30_000)
        assert analog_fold_search(energy, [250.0]) == []

    def test_short_trace_skipped(self):
        energy = np.ones(100)
        assert analog_fold_search(energy, [250.0]) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            analog_fold_search(np.empty(0), [250.0])
        with pytest.raises(ConfigurationError):
            analog_fold_search(np.ones(5000), [0.0])
