"""Additional folding tests: drift grids, windows, config edges."""

import numpy as np
import pytest

from repro.core.folding import (FoldingConfig, analog_fold_search,
                                find_stream_hypotheses)
from repro.errors import ConfigurationError
from repro.types import DetectedEdge


def edges_at(positions):
    return [DetectedEdge(position=int(p), differential=0.1 + 0j)
            for p in positions]


class TestDriftGrid:
    def test_slow_stream_with_heavy_drift_found(self):
        """At slow rates the ppm phase walk spans many samples per
        bit; the drift-corrected fold must still seed the stream."""
        period = 25_000.0 * (1 + 150e-6)
        positions = 1000.0 + period * np.arange(14)
        hyps = find_stream_hypotheses(edges_at(positions), [25_000.0])
        assert len(hyps) == 1
        assert len(hyps[0].edge_indices) >= 12

    def test_fast_stream_period_not_perturbed(self):
        """With no real drift, the seeded period stays nominal (the
        drift grid is gated off for fast short traces)."""
        positions = 40.0 + 250.0 * np.arange(30)
        hyps = find_stream_hypotheses(edges_at(positions), [250.0])
        assert hyps[0].period_samples == 250.0

    def test_two_slow_streams_both_found_under_drift(self):
        pa = 25_000.0 * (1 + 120e-6)
        pb = 25_000.0 * (1 - 120e-6)
        a = 1000.0 + pa * np.arange(14)
        b = 9000.0 + pb * np.arange(14)
        hyps = find_stream_hypotheses(
            edges_at(np.concatenate([a, b])), [25_000.0])
        assert len(hyps) == 2


class TestFoldWindow:
    def test_late_edges_still_claimed_by_tracker(self):
        """The fold seeds from the early window, but matching covers
        the whole trace."""
        positions = 40.0 + 250.0 * np.arange(300)  # 75k samples long
        hyps = find_stream_hypotheses(edges_at(positions), [250.0])
        assert len(hyps) == 1
        assert len(hyps[0].edge_indices) >= 295

    def test_custom_window_config(self):
        positions = 40.0 + 250.0 * np.arange(50)
        cfg = FoldingConfig(fold_window_periods=10.0)
        hyps = find_stream_hypotheses(edges_at(positions), [250.0],
                                      cfg)
        assert len(hyps) == 1


class TestAnalogFoldDrift:
    def test_buried_drifting_stream_found(self):
        rng = np.random.default_rng(5)
        n = 60_000
        energy = rng.exponential(1.0, n)
        period = 250.0 * (1 + 180e-6)
        k = 0
        while 137 + k * period < n - 2:
            pos = int(137 + k * period)
            energy[pos - 1: pos + 2] += 2.5
            k += 1
        hyps = analog_fold_search(energy, [250.0])
        assert len(hyps) == 1
        assert hyps[0].period_samples == pytest.approx(period,
                                                       abs=0.08)


class TestConfigEdges:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FoldingConfig(bin_width_samples=0)
        with pytest.raises(ConfigurationError):
            FoldingConfig(min_edges=1)
        with pytest.raises(ConfigurationError):
            FoldingConfig(match_tolerance_samples=0)

    def test_duplicate_candidate_periods_deduped(self):
        positions = 40.0 + 250.0 * np.arange(20)
        hyps = find_stream_hypotheses(edges_at(positions),
                                      [250.0, 250.0, 250.0])
        assert len(hyps) == 1
