"""Additional folding tests: drift grids, windows, config edges."""

import numpy as np
import pytest

from repro.core.folding import (FoldingConfig, _circular_peak_offsets,
                                analog_fold_search,
                                find_stream_hypotheses)
from repro.errors import ConfigurationError
from repro.types import DetectedEdge


def edges_at(positions):
    return [DetectedEdge(position=int(p), differential=0.1 + 0j)
            for p in positions]


class TestDriftGrid:
    def test_slow_stream_with_heavy_drift_found(self):
        """At slow rates the ppm phase walk spans many samples per
        bit; the drift-corrected fold must still seed the stream."""
        period = 25_000.0 * (1 + 150e-6)
        positions = 1000.0 + period * np.arange(14)
        hyps = find_stream_hypotheses(edges_at(positions), [25_000.0])
        assert len(hyps) == 1
        assert len(hyps[0].edge_indices) >= 12

    def test_fast_stream_period_not_perturbed(self):
        """With no real drift, the seeded period stays nominal (the
        drift grid is gated off for fast short traces)."""
        positions = 40.0 + 250.0 * np.arange(30)
        hyps = find_stream_hypotheses(edges_at(positions), [250.0])
        assert hyps[0].period_samples == 250.0

    def test_two_slow_streams_both_found_under_drift(self):
        pa = 25_000.0 * (1 + 120e-6)
        pb = 25_000.0 * (1 - 120e-6)
        a = 1000.0 + pa * np.arange(14)
        b = 9000.0 + pb * np.arange(14)
        hyps = find_stream_hypotheses(
            edges_at(np.concatenate([a, b])), [25_000.0])
        assert len(hyps) == 2


class TestFoldWindow:
    def test_late_edges_still_claimed_by_tracker(self):
        """The fold seeds from the early window, but matching covers
        the whole trace."""
        positions = 40.0 + 250.0 * np.arange(300)  # 75k samples long
        hyps = find_stream_hypotheses(edges_at(positions), [250.0])
        assert len(hyps) == 1
        assert len(hyps[0].edge_indices) >= 295

    def test_custom_window_config(self):
        positions = 40.0 + 250.0 * np.arange(50)
        cfg = FoldingConfig(fold_window_periods=10.0)
        hyps = find_stream_hypotheses(edges_at(positions), [250.0],
                                      cfg)
        assert len(hyps) == 1


class TestAnalogFoldDrift:
    def test_buried_drifting_stream_found(self):
        rng = np.random.default_rng(5)
        n = 60_000
        energy = rng.exponential(1.0, n)
        period = 250.0 * (1 + 180e-6)
        k = 0
        while 137 + k * period < n - 2:
            pos = int(137 + k * period)
            energy[pos - 1: pos + 2] += 2.5
            k += 1
        hyps = analog_fold_search(energy, [250.0])
        assert len(hyps) == 1
        assert hyps[0].period_samples == pytest.approx(period,
                                                       abs=0.08)


class TestConfigEdges:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FoldingConfig(bin_width_samples=0)
        with pytest.raises(ConfigurationError):
            FoldingConfig(min_edges=1)
        with pytest.raises(ConfigurationError):
            FoldingConfig(match_tolerance_samples=0)

    def test_duplicate_candidate_periods_deduped(self):
        positions = 40.0 + 250.0 * np.arange(20)
        hyps = find_stream_hypotheses(edges_at(positions),
                                      [250.0, 250.0, 250.0])
        assert len(hyps) == 1


class TestCircularPeakOffsets:
    """Direct tests of the fold-histogram peak extractor."""

    def test_boundary_straddling_peak_wraps_to_zero(self):
        """A cluster split across the histogram seam (last and first
        bins) must report one offset near phase 0, not one near the
        period."""
        counts = np.zeros(10, dtype=np.int64)
        counts[9] = 3
        counts[0] = 3
        offsets = _circular_peak_offsets(counts, bin_width=4.0,
                                         min_count=4, span_bins=1)
        assert len(offsets) == 1
        period = counts.size * 4.0
        # Within one bin of the seam, measured circularly.
        dist = min(offsets[0], period - offsets[0])
        assert dist <= 4.0

    def test_offsets_stay_in_period_range(self):
        """The +0.5 bin-centre shift can push a seam centroid to
        exactly n_bins; the returned offset must stay in [0, period)."""
        counts = np.zeros(8, dtype=np.int64)
        counts[7] = 5
        counts[0] = 5
        (offset,) = _circular_peak_offsets(counts, bin_width=2.0,
                                           min_count=4, span_bins=1)
        assert 0.0 <= offset < counts.size * 2.0

    def test_wide_span_merges_drift_smear(self):
        """span_bins > 1 sums a wider circular window, so a stream
        whose drift smears its edges over three bins still registers
        as a single peak at the smear's centroid."""
        counts = np.zeros(20, dtype=np.int64)
        counts[4] = 2
        counts[5] = 6
        counts[6] = 2
        offsets = _circular_peak_offsets(counts, bin_width=3.0,
                                         min_count=8, span_bins=2)
        assert len(offsets) == 1
        assert offsets[0] == pytest.approx((5 + 0.5) * 3.0, abs=3.0)

    def test_narrow_span_splits_what_wide_span_merges(self):
        """The same smeared histogram read with span_bins=1 cannot
        gather enough counts in one window to clear the minimum."""
        counts = np.zeros(20, dtype=np.int64)
        counts[4] = 2
        counts[5] = 6
        counts[6] = 2
        assert _circular_peak_offsets(counts, bin_width=3.0,
                                      min_count=11, span_bins=1) == []

    def test_two_separated_peaks_both_reported(self):
        counts = np.zeros(24, dtype=np.int64)
        counts[3] = 7
        counts[15] = 5
        offsets = sorted(_circular_peak_offsets(counts, bin_width=1.0,
                                                min_count=4,
                                                span_bins=1))
        assert len(offsets) == 2
        assert offsets[0] == pytest.approx(3.5, abs=1.0)
        assert offsets[1] == pytest.approx(15.5, abs=1.0)

    def test_suppression_window_removes_peak_shoulder(self):
        """A single wide cluster must not be double-counted as two
        adjacent peaks: the non-overlap suppression zeroes the window
        around an extracted maximum."""
        counts = np.zeros(16, dtype=np.int64)
        counts[7] = 6
        counts[8] = 6
        offsets = _circular_peak_offsets(counts, bin_width=2.0,
                                         min_count=5, span_bins=1)
        assert len(offsets) == 1

    def test_empty_histogram(self):
        assert _circular_peak_offsets(np.zeros(0, dtype=np.int64),
                                      bin_width=2.0, min_count=1) == []
