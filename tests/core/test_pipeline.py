"""Tests for the end-to-end LF decoder pipeline."""

import numpy as np
import pytest

from repro.analysis.throughput import match_streams
from repro.core.pipeline import LFDecoder, LFDecoderConfig
from repro.errors import ConfigurationError
from repro.phy.channel import ChannelModel
from repro.reader.simulator import NetworkSimulator
from repro.tags.base import FixedOffsetModel, FixedPayload
from repro.tags.lf_tag import LFTag
from repro.types import SimulationProfile, TagConfig

from ..conftest import build_decoder, build_network

PROFILE = SimulationProfile.fast()


class TestSingleTag:
    def test_perfect_decode(self, fast_profile):
        sim = build_network(1, fast_profile, seed=3)
        capture = sim.run_epoch(0.01)
        decoder = build_decoder(fast_profile)
        result = decoder.decode_epoch(capture.trace)
        assert result.n_streams == 1
        truth = capture.truths[0]
        stream = result.streams[0]
        n = min(stream.bits.size, truth.n_bits)
        assert np.array_equal(stream.bits[:n], truth.bits[:n])
        assert abs(stream.offset_samples - truth.offset_samples) < 5

    def test_offset_and_rate_estimates(self, fast_profile):
        sim = build_network(1, fast_profile, seed=4)
        capture = sim.run_epoch(0.01)
        result = build_decoder(fast_profile).decode_epoch(capture.trace)
        stream = result.streams[0]
        truth = capture.truths[0]
        assert stream.bitrate_bps == truth.nominal_bitrate_bps
        assert stream.period_samples == pytest.approx(
            truth.period_samples, rel=1e-3)

    def test_empty_trace_no_streams(self, fast_profile):
        from repro.types import IQTrace
        trace = IQTrace(samples=np.full(25_000, 0.5 + 0.3j),
                        sample_rate_hz=fast_profile.sample_rate_hz)
        result = build_decoder(fast_profile).decode_epoch(trace)
        assert result.n_streams == 0

    def test_decode_payload_content(self, fast_profile):
        payload = np.array([1, 0, 0, 1, 1, 0, 1, 0, 0, 0, 1, 1],
                           dtype=np.int8)
        coeff = 0.12 + 0.05j
        tag = LFTag(TagConfig(tag_id=0, bitrate_bps=10e3,
                              channel_coefficient=coeff),
                    payload_source=FixedPayload(payload),
                    offset_model=FixedOffsetModel(5e-4),
                    profile=fast_profile, rng=1)
        channel = ChannelModel({0: coeff})
        sim = NetworkSimulator([tag], channel, profile=fast_profile,
                               noise_std=0.008, rng=2)
        capture = sim.run_epoch((payload.size + 9 + 8) / 10e3)
        result = build_decoder(fast_profile).decode_epoch(capture.trace)
        decoded = result.streams[0].payload_bits()[:payload.size]
        np.testing.assert_array_equal(decoded, payload)


class TestMultiTag:
    def test_four_tags_all_recovered(self, fast_profile):
        sim = build_network(4, fast_profile, seed=2)
        capture = sim.run_epoch(0.01)
        result = build_decoder(fast_profile).decode_epoch(capture.trace)
        matches = match_streams(capture, result)
        recovered = sum(m.matched for m in matches)
        assert recovered == 4
        total_err = sum(m.bit_errors for m in matches)
        total = sum(m.bits_sent for m in matches)
        assert total_err / total < 0.05

    def test_aggregate_goodput_scales(self, fast_profile):
        """More tags means more aggregate recovered bits — the core
        concurrency claim."""
        totals = {}
        for n in (1, 4):
            sim = build_network(n, fast_profile, seed=8)
            capture = sim.run_epoch(0.01)
            decoder = build_decoder(fast_profile)
            result = decoder.decode_epoch(capture.trace)
            matches = match_streams(capture, result)
            totals[n] = sum(m.bits_correct for m in matches)
        assert totals[4] > 3 * totals[1]


class TestForcedCollision:
    def _collision_network(self, fast_profile, seed=0, angle_deg=75):
        gen = np.random.default_rng(seed)
        c0 = 0.11 + 0.02j
        c1 = 0.09 * np.exp(1j * np.deg2rad(angle_deg)) * (
            c0 / abs(c0))
        channel = ChannelModel({0: c0, 1: complex(c1)})
        offset = 6e-4
        tags = [LFTag(TagConfig(tag_id=k, bitrate_bps=10e3,
                                channel_coefficient=[c0, c1][k]),
                      offset_model=FixedOffsetModel(offset),
                      profile=fast_profile,
                      rng=np.random.default_rng(
                          gen.integers(0, 2 ** 63)))
                for k in range(2)]
        return NetworkSimulator(
            tags, channel, profile=fast_profile, noise_std=0.008,
            rng=np.random.default_rng(gen.integers(0, 2 ** 63)))

    def test_collision_detected_and_resolved(self, fast_profile):
        sim = self._collision_network(fast_profile, seed=5)
        capture = sim.run_epoch(0.012)
        result = build_decoder(fast_profile).decode_epoch(capture.trace)
        assert result.n_collisions_detected >= 1
        assert result.n_collisions_resolved >= 1
        matches = match_streams(capture, result)
        assert all(m.matched for m in matches)
        total_err = sum(m.bit_errors for m in matches)
        total = sum(m.bits_sent for m in matches)
        assert total_err / total < 0.1

    def test_collided_streams_flagged(self, fast_profile):
        sim = self._collision_network(fast_profile, seed=6)
        capture = sim.run_epoch(0.012)
        result = build_decoder(fast_profile).decode_epoch(capture.trace)
        assert any(s.collided for s in result.streams)


class TestAblationFlags:
    def test_stages_never_hurt(self, fast_profile):
        """Adding IQ separation and error correction must not lose
        bits on a collision workload (the Figure 9 ordering)."""
        sim = self._make_collision_sim(fast_profile)
        capture = sim.run_epoch(0.012)
        scores = {}
        for name, iq, ec in (("edge", False, False),
                             ("iq", True, False),
                             ("full", True, True)):
            decoder = build_decoder(fast_profile,
                                    enable_iq_separation=iq,
                                    enable_error_correction=ec)
            result = decoder.decode_epoch(capture.trace)
            matches = match_streams(capture, result)
            scores[name] = sum(m.bits_correct for m in matches)
        assert scores["iq"] >= scores["edge"]
        assert scores["full"] >= scores["iq"] * 0.98

    def _make_collision_sim(self, fast_profile):
        c0, c1 = 0.12 + 0.01j, -0.02 + 0.1j
        channel = ChannelModel({0: c0, 1: c1})
        tags = [LFTag(TagConfig(tag_id=k, bitrate_bps=10e3,
                                channel_coefficient=[c0, c1][k]),
                      offset_model=FixedOffsetModel(5e-4),
                      profile=fast_profile, rng=k + 10)
                for k in range(2)]
        return NetworkSimulator(tags, channel, profile=fast_profile,
                                noise_std=0.008, rng=9)


class TestMixedRates:
    def test_slow_and_fast_coexist(self, fast_profile):
        coeffs = {0: 0.12 + 0.03j, 1: -0.05 + 0.1j}
        channel = ChannelModel(coeffs)
        slow = LFTag(TagConfig(tag_id=0, bitrate_bps=1e3,
                               channel_coefficient=coeffs[0]),
                     profile=fast_profile, rng=0)
        fast = LFTag(TagConfig(tag_id=1, bitrate_bps=10e3,
                               channel_coefficient=coeffs[1]),
                     profile=fast_profile, rng=1)
        sim = NetworkSimulator([slow, fast], channel,
                               profile=fast_profile, noise_std=0.008,
                               rng=2)
        capture = sim.run_epoch(0.05)
        decoder = build_decoder(fast_profile, bitrates=(1e3, 10e3))
        result = decoder.decode_epoch(capture.trace)
        matches = match_streams(capture, result)
        by_tag = {m.tag_id: m for m in matches}
        assert by_tag[0].matched, "slow tag lost"
        assert by_tag[1].matched, "fast tag lost"
        # Slow tags must not be hurt by fast ones (Figure 11).
        assert by_tag[0].bit_errors == 0


class TestConfigValidation:
    def test_empty_bitrates(self):
        with pytest.raises(ConfigurationError):
            LFDecoderConfig(candidate_bitrates_bps=[],
                            profile=PROFILE)

    def test_invalid_bitrate(self):
        with pytest.raises(ConfigurationError):
            LFDecoderConfig(candidate_bitrates_bps=[10e3 + 1],
                            profile=PROFILE)

    def test_bad_header_score(self):
        with pytest.raises(ConfigurationError):
            LFDecoderConfig(candidate_bitrates_bps=[10e3],
                            profile=PROFILE, min_header_score=1.5)

    def test_candidate_periods_sorted(self):
        decoder = LFDecoder(LFDecoderConfig(
            candidate_bitrates_bps=[1e3, 10e3, 5e3],
            profile=PROFILE))
        periods = decoder.candidate_periods()
        assert periods == sorted(periods)
        assert periods[0] == pytest.approx(250.0)


class TestCollinearCollision:
    def _run_seed(self, fast_profile, seed):
        gen = np.random.default_rng(seed)
        u = np.exp(1j * gen.uniform(0, 2 * np.pi))
        c0, c1 = 0.12 * u, complex(-0.055 * u)
        channel = ChannelModel({0: c0, 1: c1},
                               environment_offset=0.5 + 0.3j)
        tags = [LFTag(TagConfig(tag_id=k, bitrate_bps=10e3,
                                channel_coefficient=[c0, c1][k],
                                clock_drift_ppm=10),
                      offset_model=FixedOffsetModel(6e-4),
                      profile=fast_profile,
                      rng=np.random.default_rng(
                          gen.integers(0, 2 ** 63)))
                for k in range(2)]
        sim = NetworkSimulator(tags, channel, profile=fast_profile,
                               noise_std=0.008,
                               rng=np.random.default_rng(
                                   gen.integers(0, 2 ** 63)))
        capture = sim.run_epoch(0.012)
        result = build_decoder(fast_profile).decode_epoch(
            capture.trace)
        matches = match_streams(capture, result)
        recovered = sum(m.bits_correct for m in matches)
        sent = sum(m.bits_sent for m in matches)
        return recovered / sent

    def test_anti_parallel_pairs_mostly_recovered(self, fast_profile):
        """Edge vectors on one line defeat the parallelogram method;
        the scalar-lattice extension recovers most such pairs (the
        plain pipeline would lose both tags every time)."""
        scores = [self._run_seed(fast_profile, 900 + s)
                  for s in range(5)]
        assert float(np.mean(scores)) > 0.7
        assert max(scores) > 0.9
