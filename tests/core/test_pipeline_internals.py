"""Tests for the pipeline's internal helpers."""

import numpy as np
import pytest

from repro.core.pipeline import (_dedup_streams, _hold_cluster_noise,
                                 _project_single)
from repro.errors import DecodeError
from repro.types import DecodedStream


def make_stream(bits, offset, confidence=1.0, bitrate=10e3,
                period=250.0, collided=False):
    return DecodedStream(bits=np.asarray(bits, dtype=np.int8),
                         offset_samples=offset,
                         period_samples=period, bitrate_bps=bitrate,
                         collided=collided, confidence=confidence)


class TestProjectSingle:
    def test_projects_onto_edge_axis(self):
        e = 0.1 + 0.04j
        rng = np.random.default_rng(0)
        states = rng.integers(-1, 2, 200)
        diffs = states * e + (rng.normal(0, 0.002, 200)
                              + 1j * rng.normal(0, 0.002, 200))
        obs = _project_single(diffs)
        # Up to a global sign, observations recover the states.
        sign = 1.0 if np.sum(obs * states) >= 0 else -1.0
        np.testing.assert_allclose(sign * obs, states, atol=0.15)

    def test_scale_normalized_to_unit(self):
        e = 0.05 - 0.02j   # scale must not depend on |e|
        states = np.array([1, -1, 0, 1, -1, 0, 1, -1] * 10)
        obs = _project_single(states * e)
        strong = np.abs(obs) > 0.5
        assert np.median(np.abs(obs[strong])) == pytest.approx(1.0,
                                                               abs=0.05)

    def test_all_zero_rejected(self):
        with pytest.raises(DecodeError):
            _project_single(np.zeros(20, dtype=complex))

    def test_empty_rejected(self):
        with pytest.raises(DecodeError):
            _project_single(np.empty(0, dtype=complex))


class TestHoldClusterNoise:
    def test_estimates_hold_scatter(self):
        e = 0.1 + 0j
        rng = np.random.default_rng(1)
        states = np.array([1, -1] * 50 + [0] * 100)
        noise = (rng.normal(0, 0.004 / np.sqrt(2), 200)
                 + 1j * rng.normal(0, 0.004 / np.sqrt(2), 200))
        diffs = states * e + noise
        estimate = _hold_cluster_noise(diffs)
        assert estimate == pytest.approx(0.004, rel=0.4)

    def test_degenerate_inputs(self):
        assert _hold_cluster_noise(np.zeros(5, dtype=complex)) == 0.0
        assert _hold_cluster_noise(
            np.full(5, 0.1 + 0j, dtype=complex)) == 0.0


class TestDedupStreams:
    def test_ghost_removed(self):
        bits = [1, 0, 1, 0, 1, 0, 1, 0, 1, 1, 1, 0]
        real = make_stream(bits, 1000.0, confidence=1.0)
        ghost = make_stream(bits, 1004.0, confidence=0.8)
        kept = _dedup_streams([ghost, real])
        assert kept == [real]

    def test_distinct_tag_same_phase_kept(self):
        """Same phase but different bits = a genuine second tag."""
        a = make_stream([1, 0, 1, 0, 1, 0, 1, 1, 0, 0, 1, 1],
                        1000.0)
        b = make_stream([1, 0, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0],
                        1003.0)
        kept = _dedup_streams([a, b])
        assert len(kept) == 2

    def test_different_rates_never_deduped(self):
        a = make_stream([1, 0, 1, 0], 1000.0, bitrate=10e3)
        b = make_stream([1, 0, 1, 0], 1000.0, bitrate=5e3,
                        period=500.0)
        assert len(_dedup_streams([a, b])) == 2

    def test_phase_wraparound_gap(self):
        """Offsets one period apart are the same grid phase."""
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        a = make_stream(bits, 1000.0)
        b = make_stream(bits, 1252.0)  # ~one period later, same bits
        assert len(_dedup_streams([a, b])) == 1

    def test_higher_confidence_wins(self):
        bits = [1, 0, 1, 1, 0, 0]
        weak = make_stream(bits, 1000.0, confidence=0.8)
        strong = make_stream(bits, 1002.0, confidence=1.0)
        kept = _dedup_streams([weak, strong])
        assert kept[0].confidence == 1.0

    def test_empty(self):
        assert _dedup_streams([]) == []
