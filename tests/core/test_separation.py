"""Tests for the parallelogram collision separator (Section 3.4)."""

import numpy as np
import pytest

from repro.core.clustering import kmeans
from repro.core.separation import (LATTICE_COORDS,
                                   basis_from_collinear_midpoints,
                                   basis_from_lattice_fit,
                                   continuous_coords, separate_two_way)
from repro.errors import (CollisionUnresolvableError,
                          ConfigurationError)

E1 = 0.11 + 0.03j
E2 = -0.04 + 0.09j


def exact_centroids(e1=E1, e2=E2):
    return np.array([a * e1 + b * e2 for a, b in LATTICE_COORDS])


def collision_points(e1=E1, e2=E2, n=300, sigma=0.003, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.integers(-1, 2, n)
    b = rng.integers(-1, 2, n)
    pts = a * e1 + b * e2 + (rng.normal(0, sigma, n)
                             + 1j * rng.normal(0, sigma, n))
    return pts, a, b


def basis_matches(found, truth, tol=0.01):
    """Check basis equality up to order swap and sign flips."""
    f1, f2 = found
    t1, t2 = truth
    for a, b in ((f1, f2), (f2, f1)):
        for s1 in (1, -1):
            for s2 in (1, -1):
                if abs(s1 * a - t1) < tol and abs(s2 * b - t2) < tol:
                    return True
    return False


class TestBasisFromLatticeFit:
    def test_exact_lattice(self):
        e1, e2, err = basis_from_lattice_fit(exact_centroids())
        assert basis_matches((e1, e2), (E1, E2))
        assert err == pytest.approx(0.0, abs=1e-9)

    def test_wrong_count_rejected(self):
        with pytest.raises(ConfigurationError):
            basis_from_lattice_fit(np.zeros(5, dtype=complex))

    def test_parallel_vectors_unresolvable(self):
        cents = exact_centroids(0.1 + 0j, 0.05 + 0j)
        with pytest.raises(CollisionUnresolvableError):
            basis_from_lattice_fit(cents)


class TestBasisFromCollinearMidpoints:
    def test_exact_lattice(self):
        e1, e2 = basis_from_collinear_midpoints(exact_centroids())
        assert basis_matches((e1, e2), (E1, E2))

    def test_agrees_with_lattice_fit_under_noise(self):
        pts, _, _ = collision_points(sigma=0.002, seed=2)
        fit = kmeans(pts, 9, rng=0, n_init=6)
        a1, a2, _ = basis_from_lattice_fit(fit.centroids)
        b1, b2 = basis_from_collinear_midpoints(fit.centroids)
        assert basis_matches((a1, a2), (b1, b2), tol=0.02)


class TestContinuousCoords:
    def test_exact_inversion(self):
        pts, a, b = collision_points(sigma=0.0, seed=1)
        coords = continuous_coords(pts, E1, E2)
        np.testing.assert_allclose(coords[:, 0], a, atol=1e-9)
        np.testing.assert_allclose(coords[:, 1], b, atol=1e-9)

    def test_parallel_basis_rejected(self):
        with pytest.raises(CollisionUnresolvableError):
            continuous_coords(np.ones(5, dtype=complex), 0.1, 0.05)


class TestSeparateTwoWay:
    def test_recovers_both_streams(self):
        pts, a, b = collision_points(n=400, sigma=0.003, seed=3)
        result = separate_two_way(pts, rng=0)
        states = result.hard_states()
        # Column assignment is ambiguous: check both pairings.
        direct = (np.mean(states[:, 0] == a)
                  + np.mean(states[:, 1] == b))
        swapped = (np.mean(states[:, 0] == b)
                   + np.mean(states[:, 1] == a))
        # Sign may also flip per column; accept the best over signs.
        best = 0.0
        for c0 in (states[:, 0], -states[:, 0]):
            for c1 in (states[:, 1], -states[:, 1]):
                best = max(best,
                           np.mean(c0 == a) + np.mean(c1 == b),
                           np.mean(c0 == b) + np.mean(c1 == a))
        assert best / 2 > 0.97
        del direct, swapped

    def test_lattice_error_reported(self):
        pts, _, _ = collision_points(n=300, sigma=0.002, seed=4)
        result = separate_two_way(pts, rng=1)
        assert result.lattice_error < 0.01

    def test_methods_agree(self):
        pts, _, _ = collision_points(n=400, sigma=0.002, seed=5)
        a = separate_two_way(pts, rng=2, method="lattice_fit")
        b = separate_two_way(pts, rng=2,
                             method="collinear_midpoints")
        assert basis_matches((a.e1, a.e2), (b.e1, b.e2), tol=0.02)

    def test_too_few_points(self):
        with pytest.raises(CollisionUnresolvableError):
            separate_two_way(np.ones(5, dtype=complex))

    def test_unknown_method(self):
        pts, _, _ = collision_points()
        with pytest.raises(ConfigurationError):
            separate_two_way(pts, method="nonsense")


class TestSeparateCollinear:
    def _points(self, s1, s2, n=400, sigma=0.004, seed=0,
                angle=0.7):
        from repro.core.separation import separate_collinear
        rng = np.random.default_rng(seed)
        u = np.exp(1j * angle)
        a = rng.integers(-1, 2, n)
        b = rng.integers(-1, 2, n)
        d = (a * s1 + b * s2) * u + (
            rng.normal(0, sigma, n) + 1j * rng.normal(0, sigma, n))
        return d, a, b

    def _accuracy(self, result, a, b):
        states = result.hard_states()
        best = 0.0
        for c0 in (states[:, 0], -states[:, 0]):
            for c1 in (states[:, 1], -states[:, 1]):
                best = max(best,
                           np.mean(c0 == a) + np.mean(c1 == b),
                           np.mean(c0 == b) + np.mean(c1 == a))
        return best / 2

    def test_generic_magnitudes_separate(self):
        from repro.core.separation import separate_collinear
        d, a, b = self._points(0.12, -0.05)
        result = separate_collinear(d, rng=1)
        assert self._accuracy(result, a, b) > 0.95

    def test_parallel_same_sign(self):
        from repro.core.separation import separate_collinear
        d, a, b = self._points(0.1, 0.045, seed=2)
        result = separate_collinear(d, rng=1)
        assert self._accuracy(result, a, b) > 0.9

    def test_degenerate_ratio_rejected(self):
        """s1 = -2*s2 makes lattice values coincide; the separator
        must refuse rather than mislabel."""
        from repro.core.separation import separate_collinear
        d, _, _ = self._points(0.12, -0.06, seed=3)
        with pytest.raises(CollisionUnresolvableError):
            separate_collinear(d, rng=1)

    def test_similar_magnitudes_rejected(self):
        from repro.core.separation import separate_collinear
        d, _, _ = self._points(0.1, -0.095, seed=4)
        with pytest.raises(CollisionUnresolvableError):
            separate_collinear(d, rng=1)

    def test_too_few_points(self):
        from repro.core.separation import separate_collinear
        with pytest.raises(CollisionUnresolvableError):
            separate_collinear(np.ones(5, dtype=complex))
