"""Lifecycle tests for the cross-epoch session decoder caches.

Covers the three ways a :class:`StreamTracker` can be wrong and what
the session does about each: a tag that *appears* mid-session (no
tracker — cold pickup), a tag that *disappears* (tracker evicted after
``max_misses`` unmatched epochs), and a tag whose timing *drifts*
beyond ``period_tolerance`` (tracker refuses the match; the stream is
re-acquired cold under a fresh tracker).  The warm path must stay an
optimization, never an oracle: on stable streams its bits match a cold
decoder's exactly.
"""

import numpy as np
import pytest

from repro.core import LFDecoder, LFDecoderConfig, SessionDecoder
from repro.core.session import (SessionConfig, SessionState,
                                StreamTracker, CACHE_STAT_KEYS)
from repro.errors import ConfigurationError
from repro.phy.channel import ChannelModel, random_coefficients
from repro.reader.simulator import NetworkSimulator
from repro.tags.lf_tag import LFTag
from repro.types import SimulationProfile, TagConfig

PROFILE = SimulationProfile.fast()
EPOCH_S = 0.008
N_COEFFS = 4

_COEFF_GEN = np.random.default_rng(7)
COEFFS = random_coefficients(N_COEFFS, rng=_COEFF_GEN)


def make_simulator(tag_ids, seed, noise_std=0.008):
    """A network of the given tags, with per-tag channels held fixed
    across simulators so a tag keeps its IQ identity between them."""
    gen = np.random.default_rng(seed)
    channel = ChannelModel({k: COEFFS[k] for k in tag_ids},
                          environment_offset=0.5 + 0.3j)
    tags = [LFTag(TagConfig(tag_id=k, bitrate_bps=10e3,
                            channel_coefficient=COEFFS[k]),
                  profile=PROFILE,
                  rng=np.random.default_rng(gen.integers(0, 2 ** 63)))
            for k in tag_ids]
    return NetworkSimulator(tags, channel, profile=PROFILE,
                            noise_std=noise_std, rng=gen)


def make_config():
    return LFDecoderConfig(candidate_bitrates_bps=[10e3],
                           profile=PROFILE)


def _truth_decoded(result, truth) -> bool:
    target = tuple(int(b) for b in truth.bits)
    if not target:
        return False
    inverse = tuple(1 - b for b in target)
    n = len(target)
    for stream in result.streams:
        bits = tuple(stream.bits.tolist())
        for off in range(0, max(1, len(bits) - n + 1)):
            window = bits[off:off + n]
            if window == target or window == inverse:
                return True
    return False


# -- SessionState unit behaviour ------------------------------------------


def _seed_tracker(state, period=250.0, offset=40.0, seed=0):
    """Create one tracker through the public observe() path."""
    gen = np.random.default_rng(seed)
    diffs = (0.3 + 0.1j) * np.sign(gen.standard_normal(32)) \
        + 0.003 * (gen.standard_normal(32)
                   + 1j * gen.standard_normal(32))
    state.begin_epoch()
    tracker = state.observe(None, period, offset, diffs)
    state.end_epoch({})
    return tracker, diffs


def test_tracker_evicted_after_max_misses():
    state = SessionState(SessionConfig(max_misses=2))
    _seed_tracker(state)
    assert state.n_trackers == 1

    state.begin_epoch()
    state.end_epoch({})  # miss 1: kept, but no longer hint-eligible
    assert state.n_trackers == 1

    state.begin_epoch()
    assert state.warm_hints() == []  # missed trackers stop hinting
    state.end_epoch({})  # miss 2 == max_misses: evicted
    assert state.n_trackers == 0


def test_missed_tracker_recovers_on_rematch():
    state = SessionState(SessionConfig(max_misses=3))
    tracker, diffs = _seed_tracker(state)

    state.begin_epoch()
    state.end_epoch({})
    assert tracker.misses == 1

    state.begin_epoch()
    assert state.match(tracker.period_samples, 99.0, diffs) is tracker
    state.end_epoch({})
    assert tracker.misses == 0


def test_drift_beyond_tolerance_forces_reacquisition():
    cfg = SessionConfig(period_tolerance=1.5e-3)
    state = SessionState(cfg)
    tracker, diffs = _seed_tracker(state, period=250.0)

    state.begin_epoch()
    drifted = 250.0 * (1 + 4 * cfg.period_tolerance)
    assert state.match(drifted, 40.0, diffs) is None
    # The decode proceeds cold and re-acquires under a new tracker.
    fresh = state.observe(None, drifted, 40.0, diffs)
    assert fresh is not tracker
    state.end_epoch({})
    assert state.n_trackers == 2

    # Within tolerance the same stream still matches (ppm drift).
    state.begin_epoch()
    nearby = 250.0 * (1 + 0.5 * cfg.period_tolerance)
    assert state.match(nearby, 7.0, diffs) is tracker
    state.end_epoch({})


def test_phase_is_identity_only_for_chunked_captures():
    state = SessionState()
    tracker, diffs = _seed_tracker(state, period=250.0, offset=40.0)
    other = np.conjugate(diffs) * 1j  # rotated channel: different tag

    # Independent epoch (sample_offset == 0): a phase coincidence is
    # spurious, so a geometry mismatch must refuse the match.
    state.begin_epoch(sample_offset=0.0)
    assert state.match(250.0, 40.0, other) is None
    state.end_epoch({})

    # Later chunk of one capture: a stable *global* phase is identity
    # by itself, geometry notwithstanding.
    state.begin_epoch(sample_offset=12345.0)
    chunk_offset = (tracker.offset_phase - 12345.0) % 250.0
    assert state.match(250.0, chunk_offset, other) is tracker
    state.end_epoch({})


def test_warm_fit_blown_guard():
    from repro.core.clustering import KMeansResult
    state = SessionState(SessionConfig(inertia_blowup=4.0))
    good = KMeansResult(centroids=np.zeros(3, dtype=complex),
                        labels=np.zeros(100, dtype=int),
                        inertia=1.0)
    blown = KMeansResult(centroids=np.zeros(3, dtype=complex),
                         labels=np.zeros(100, dtype=int),
                         inertia=50.0)
    cached = {3: 1.0 / 100}
    assert not state.warm_fit_blown(cached, {3: good})
    assert state.warm_fit_blown(cached, {3: blown})
    # Uncached and filtered-out cluster counts are not guarded.
    assert not state.warm_fit_blown({}, {3: blown})
    assert not state.warm_fit_blown(cached, {3: blown}, keys=[9])


def test_session_config_validation():
    with pytest.raises(ConfigurationError):
        SessionConfig(period_tolerance=0.0)
    with pytest.raises(ConfigurationError):
        SessionConfig(inertia_blowup=1.0)
    with pytest.raises(ConfigurationError):
        SessionConfig(max_misses=0)
    with pytest.raises(ConfigurationError):
        SessionConfig(geometry_tolerance=2.5)


# -- full-decode lifecycle -------------------------------------------------


def test_new_tag_mid_session_is_picked_up_cold():
    """A tag that starts transmitting mid-session decodes the epoch it
    appears (cold pickup) and is tracked from then on."""
    session = SessionDecoder(make_config(), rng=123)
    for i in range(2):
        capture = make_simulator([0, 1], seed=20 + i).run_epoch(EPOCH_S)
        session.decode_epoch(capture.trace)
    trackers_before = session.n_trackers
    assert trackers_before >= 2

    late = make_simulator([0, 1, 2], seed=30).run_epoch(EPOCH_S)
    result = session.decode_epoch(late.trace)
    new_truth = next(t for t in late.truths if t.tag_id == 2)
    assert _truth_decoded(result, new_truth)
    assert session.n_trackers > trackers_before


def test_disappearing_tag_evicts_its_tracker():
    """When a tag leaves the session its tracker misses every epoch and
    is evicted after ``max_misses`` epochs — the hint budget tracks the
    population actually present."""
    session = SessionDecoder(
        make_config(), rng=123,
        session_config=SessionConfig(max_misses=2))
    for i in range(2):
        capture = make_simulator([0, 1], seed=40 + i).run_epoch(EPOCH_S)
        session.decode_epoch(capture.trace)
    with_two = session.n_trackers
    assert with_two >= 2

    for i in range(3):
        capture = make_simulator([0], seed=50 + i).run_epoch(EPOCH_S)
        result = session.decode_epoch(capture.trace)
        assert _truth_decoded(result, capture.truths[0])
    assert session.n_trackers < with_two


@pytest.mark.parametrize("seed", [31, 42, 55])
def test_warm_bits_match_cold_bits_on_stable_streams(seed):
    """Property: on a stable population the warm path's decoded bits
    are exactly the cold path's, every epoch, stream for stream.

    "Stable" is the operative word: these seeds produce collision-free
    epochs (like ``four_tag_capture`` in conftest), so every stream is
    the same physical tag with the same geometry throughout.  Epochs
    where fold grids collide re-randomize the *pairing* each epoch and
    warm/cold may legitimately resolve the churn differently — that
    regime is covered by the loss bound in the session benchmark, not
    by bit identity."""
    config = make_config()
    sim = make_simulator([0, 1, 2], seed=seed)
    captures = [sim.run_epoch(EPOCH_S, epoch_index=i) for i in range(4)]

    session = SessionDecoder(config, rng=123)
    for i, capture in enumerate(captures):
        warm = session.decode_epoch(capture.trace)
        cold = LFDecoder(config, rng=123).decode_epoch(capture.trace)
        # Every tag the cold path decodes, the warm path decodes with
        # the same bits (the truth pattern pins both down exactly).
        for truth in capture.truths:
            if _truth_decoded(cold, truth):
                assert _truth_decoded(warm, truth), (
                    f"epoch {i}: warm path lost tag {truth.tag_id}")
        # And wherever both paths report the same physical stream, the
        # payloads agree bit for bit.  (The cold path also emits ghost
        # re-detections of already-decoded streams; the session's
        # tracker dedup suppresses those, so unpaired cold streams are
        # expected and not compared.)
        for cold_stream in cold.streams:
            twins = [
                s for s in warm.streams
                if abs(s.offset_samples - cold_stream.offset_samples)
                <= 2.0
                and abs(s.period_samples - cold_stream.period_samples)
                <= 1e-3 * cold_stream.period_samples]
            bits = cold_stream.bits.tolist()
            assert not twins or any(
                t.bits.tolist() == bits
                or [1 - b for b in t.bits.tolist()] == bits
                for t in twins), \
                f"epoch {i}: warm bits differ from cold bits"


def test_cache_stats_flow_through_results():
    session = SessionDecoder(make_config(), rng=123)
    sim = make_simulator([0, 1, 2], seed=60)
    results = session.decode_epochs(
        [sim.run_epoch(EPOCH_S, epoch_index=i).trace for i in range(3)])
    for result in results:
        assert set(result.cache_stats) == set(CACHE_STAT_KEYS)
    # Epoch 0 decodes cold; later epochs must actually hit the caches.
    assert sum(results[0].cache_stats.values()) == 0 or \
        results[0].cache_stats.get("fold_hits", 0) == 0
    assert results[-1].cache_stats["fold_hits"] > 0
    totals = session.cache_stats
    assert totals["fold_hits"] >= results[-1].cache_stats["fold_hits"]
    session.reset()
    assert session.n_trackers == 0
    assert sum(session.cache_stats.values()) == 0


def test_tracker_polarity_cache_is_advisory():
    """A poisoned polarity hint must not change decoded bits — the
    anchor search scores both polarities regardless of hint order."""
    config = make_config()
    sim = make_simulator([0], seed=70)
    captures = [sim.run_epoch(EPOCH_S, epoch_index=i) for i in range(2)]
    session = SessionDecoder(config, rng=123)
    session.decode_epoch(captures[0].trace)
    for tracker in session.state.trackers:
        if tracker.flipped is not None:
            tracker.flipped = not tracker.flipped
    warm = session.decode_epoch(captures[1].trace)
    cold = LFDecoder(config, rng=123).decode_epoch(captures[1].trace)
    assert [s.bits.tolist() for s in warm.streams] \
        == [s.bits.tolist() for s in cold.streams]
