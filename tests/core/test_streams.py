"""Tests for stream tracking and grid differential extraction."""

import numpy as np
import pytest

from repro.core.edges import EdgeDetector
from repro.core.folding import find_stream_hypotheses
from repro.core.streams import (StreamTrack, read_grid_differentials,
                                track_from_analog, track_stream)
from repro.errors import ConfigurationError, DecodeError
from repro.phy.modulation import nrz_waveform
from repro.types import DetectedEdge, IQTrace, StreamHypothesis


def hypothesis_for(positions, period):
    edges = [DetectedEdge(position=int(p), differential=0.1)
             for p in positions]
    hyp = StreamHypothesis(offset_samples=positions[0] % period,
                           period_samples=period,
                           edge_indices=list(range(len(positions))))
    return hyp, edges


class TestTrackStream:
    def test_exact_grid(self):
        positions = 40.0 + 250.0 * np.arange(20)
        hyp, edges = hypothesis_for(positions, 250.0)
        track = track_stream(hyp, edges, n_samples=6000)
        assert track.offset_samples == pytest.approx(40.0, abs=0.5)
        assert track.period_samples == pytest.approx(250.0, abs=0.05)

    def test_recovers_drifted_period(self):
        period = 250.0 * (1 + 150e-6)
        positions = np.round(40.0 + period * np.arange(60))
        hyp, edges = hypothesis_for(positions, 250.0)
        track = track_stream(hyp, edges, n_samples=20_000)
        assert track.period_samples == pytest.approx(period, abs=0.02)

    def test_grid_extends_to_trace_end(self):
        positions = 40.0 + 250.0 * np.arange(5)
        hyp, edges = hypothesis_for(positions, 250.0)
        track = track_stream(hyp, edges, n_samples=10_000)
        grid = track.grid_positions()
        assert grid[-1] <= 9999
        assert grid[-1] > 9000

    def test_grid_extends_back_to_start(self):
        """First matched edge at a late slot still yields a grid from
        near sample zero (earlier edges may have been missed)."""
        positions = 2040.0 + 250.0 * np.arange(10)
        hyp, edges = hypothesis_for(positions, 250.0)
        track = track_stream(hyp, edges, n_samples=8000)
        assert track.offset_samples < 250.0

    def test_no_edges_rejected(self):
        hyp = StreamHypothesis(offset_samples=0.0, period_samples=250.0)
        with pytest.raises(DecodeError):
            track_stream(hyp, [], n_samples=1000)


class TestReadGridDifferentials:
    def test_values_match_transitions(self):
        coeff = 0.1 + 0.04j
        n = 6000
        bits = [1, 0, 0, 1, 1, 1, 0, 1, 0, 1, 0, 1]
        wave = nrz_waveform(bits, 500.0, 250.0, n)
        trace = IQTrace(samples=0.5 + 0.3j + coeff * wave,
                        sample_rate_hz=2.5e6)
        det = EdgeDetector()
        edges = det.detect(trace)
        hyps = find_stream_hypotheses(edges, [250.0])
        track = track_stream(hyps[0], edges, n)
        diffs = read_grid_differentials(trace, track, edges)
        # Slot of the first boundary:
        k0 = int(round((500.0 - track.offset_samples)
                       / track.period_samples))
        expected_states = [1, -1, 0, 1, 0, 0, -1, 1, -1, 1, -1, 1]
        for state, diff in zip(expected_states,
                               diffs[k0:k0 + len(bits)]):
            assert abs(diff - state * coeff) < 0.02

    def test_window_override(self):
        n = 3000
        wave = nrz_waveform([1, 0, 1, 0, 1, 0], 500.0, 250.0, n)
        trace = IQTrace(samples=0.5 + 0.1 * wave, sample_rate_hz=2.5e6)
        det = EdgeDetector()
        edges = det.detect(trace)
        hyps = find_stream_hypotheses(edges, [250.0],)
        track = track_stream(hyps[0], edges, n)
        small = read_grid_differentials(trace, track, edges,
                                        window_override=5)
        large = read_grid_differentials(trace, track, edges,
                                        window_override=100)
        assert small.shape == large.shape


class TestTrackFromAnalog:
    def test_snaps_to_energy_peaks(self):
        n = 20_000
        energy = np.full(n, 0.01)
        true_offset, period = 143.0, 250.0
        for k in range(int((n - true_offset) / period)):
            pos = int(true_offset + k * period)
            energy[pos] = 1.0
        hyp = StreamHypothesis(offset_samples=140.0,
                               period_samples=250.0)
        track = track_from_analog(hyp, energy)
        assert track.offset_samples % 250 == pytest.approx(143.0,
                                                           abs=1.0)

    def test_refits_drifted_period(self):
        n = 50_000
        energy = np.full(n, 0.01)
        period = 250.0 * (1 + 200e-6)
        for k in range(int(n / period) - 1):
            energy[int(100 + k * period)] = 1.0
        hyp = StreamHypothesis(offset_samples=100.0,
                               period_samples=250.0)
        track = track_from_analog(hyp, energy)
        assert track.period_samples == pytest.approx(period, abs=0.05)

    def test_empty_energy_rejected(self):
        hyp = StreamHypothesis(offset_samples=0.0, period_samples=250.0)
        with pytest.raises(ConfigurationError):
            track_from_analog(hyp, np.empty(0))


class TestStreamTrack:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StreamTrack(offset_samples=0.0, period_samples=0.0,
                        n_slots=5)
        with pytest.raises(ConfigurationError):
            StreamTrack(offset_samples=0.0, period_samples=250.0,
                        n_slots=0)

    def test_grid_positions(self):
        track = StreamTrack(offset_samples=10.0, period_samples=100.0,
                            n_slots=3)
        np.testing.assert_allclose(track.grid_positions(),
                                   [10, 110, 210])
