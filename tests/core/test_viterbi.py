"""Tests for the 4-state Viterbi edge-sequence decoder (Section 3.5)."""

import numpy as np
import pytest

from repro.core.viterbi import (FALL, HOLD_HIGH, HOLD_LOW, RISE,
                                ViterbiDecoder, bits_to_edge_states,
                                edge_states_to_bits, estimate_sigma,
                                hard_decode_bits,
                                is_valid_state_sequence)
from repro.errors import ConfigurationError


def observations_for(bits, sigma=0.0, seed=0):
    """Ideal projected observations for a bit sequence from level 0."""
    states = bits_to_edge_states(bits)
    means = np.array([1.0, -1.0, 0.0, 0.0])[states]
    if sigma:
        rng = np.random.default_rng(seed)
        means = means + rng.normal(0, sigma, means.size)
    return means


class TestStateBitMappings:
    def test_round_trip(self):
        bits = np.array([1, 0, 0, 1, 1, 0, 1], dtype=np.int8)
        states = bits_to_edge_states(bits)
        np.testing.assert_array_equal(edge_states_to_bits(states), bits)

    def test_states_valid_by_construction(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            bits = rng.integers(0, 2, 30)
            assert is_valid_state_sequence(bits_to_edge_states(bits))

    def test_invalid_sequence_detected(self):
        assert not is_valid_state_sequence([RISE, RISE])
        assert not is_valid_state_sequence([RISE, HOLD_LOW])
        assert not is_valid_state_sequence([FALL])  # level starts 0
        assert is_valid_state_sequence([RISE, HOLD_HIGH, FALL,
                                        HOLD_LOW, RISE])

    def test_mapping_validation(self):
        with pytest.raises(ConfigurationError):
            edge_states_to_bits([5])
        with pytest.raises(ConfigurationError):
            bits_to_edge_states([2])


class TestViterbiDecoder:
    def test_noiseless_decode_exact(self):
        bits = np.array([1, 0, 0, 0, 0, 1, 1, 0, 1, 0], dtype=np.int8)
        obs = observations_for(bits)
        decoded = ViterbiDecoder().decode_bits(obs)
        np.testing.assert_array_equal(decoded, bits)

    def test_output_always_valid(self):
        rng = np.random.default_rng(1)
        decoder = ViterbiDecoder()
        for seed in range(10):
            obs = rng.normal(0, 1, 50)  # pure garbage input
            states = decoder.decode_states(obs)
            assert is_valid_state_sequence(states)

    def test_corrects_isolated_glitch(self):
        """A spurious opposite-polarity blip gets corrected because the
        resulting edge sequence would be invalid."""
        bits = np.array([1, 1, 1, 1, 1, 1, 1, 1], dtype=np.int8)
        obs = observations_for(bits)
        obs[4] = 0.9  # a fake second rise while already high
        decoded = ViterbiDecoder().decode_bits(obs)
        np.testing.assert_array_equal(decoded, bits)

    def test_beats_hard_decisions_in_noise(self):
        rng = np.random.default_rng(2)
        decoder = ViterbiDecoder()
        vit_errors = 0
        hard_errors = 0
        for seed in range(10):
            bits = rng.integers(0, 2, 200).astype(np.int8)
            obs = observations_for(bits, sigma=0.45, seed=seed)
            vit = decoder.decode_bits(obs)
            hard = hard_decode_bits(obs)
            vit_errors += np.count_nonzero(vit != bits)
            hard_errors += np.count_nonzero(hard != bits)
        assert vit_errors < hard_errors

    def test_initial_state_forced(self):
        obs = np.array([1.0, -1.0, 1.0])
        states = ViterbiDecoder().decode_states(obs,
                                                initial_state=RISE)
        assert states[0] == RISE

    def test_fit_flip_probability(self):
        decoder = ViterbiDecoder()
        p = decoder.fit_flip_probability(
            [np.array([1, 0, 1, 0]), np.array([0, 0, 0, 0])])
        assert p == pytest.approx(3 / 6)

    def test_flip_probability_validation(self):
        with pytest.raises(ConfigurationError):
            ViterbiDecoder().fit_flip_probability([np.array([1])])
        with pytest.raises(ConfigurationError):
            ViterbiDecoder(p_flip=0.0)
        with pytest.raises(ConfigurationError):
            ViterbiDecoder(sigma=-1.0)

    def test_empty_observations(self):
        with pytest.raises(ConfigurationError):
            ViterbiDecoder().decode_bits(np.empty(0))

    def test_bad_initial_state(self):
        with pytest.raises(ConfigurationError):
            ViterbiDecoder().decode_states(np.ones(3),
                                           initial_state=7)


class TestHardDecode:
    def test_integrates_level(self):
        obs = np.array([1.0, 0.0, -1.0, 0.0, 1.0])
        np.testing.assert_array_equal(hard_decode_bits(obs),
                                      [1, 1, 0, 0, 1])

    def test_repeated_rise_keeps_level(self):
        obs = np.array([1.0, 1.0, 0.0])
        np.testing.assert_array_equal(hard_decode_bits(obs),
                                      [1, 1, 1])


class TestEstimateSigma:
    def test_recovers_noise_scale(self):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, 3000)
        obs = observations_for(bits, sigma=0.2, seed=4)
        assert estimate_sigma(obs) == pytest.approx(0.2, rel=0.15)

    def test_floor_applied(self):
        obs = observations_for(np.array([1, 0, 1, 0]))
        assert estimate_sigma(obs) == 0.05

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_sigma(np.empty(0))
