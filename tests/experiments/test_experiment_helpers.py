"""Unit tests for experiment-internal helper functions."""

import numpy as np
import pytest

from repro.experiments.ablation_analog import run as run_analog
from repro.experiments.common import ExperimentResult, _fmt
from repro.experiments.fig05_parallelogram import (_basis_error,
                                                   synthesize_collision)
from repro.experiments.fig01_dynamics import traces
from repro.experiments.sec52_scaling import (
    max_tags_for_collision_budget)
from repro.experiments.sec6_modulation import toggles_per_bit


class TestBasisError:
    def test_exact_match_zero(self):
        assert _basis_error((0.1 + 0j, 0.05j),
                            (0.1 + 0j, 0.05j)) == 0.0

    def test_swap_and_sign_invariant(self):
        e1, e2 = 0.1 + 0.02j, -0.03 + 0.08j
        assert _basis_error((-e2, e1), (e1, e2)) == pytest.approx(0.0)

    def test_nonzero_for_wrong_basis(self):
        assert _basis_error((0.2 + 0j, 0.1j),
                            (0.1 + 0j, 0.05j)) > 0.1


class TestSynthesizeCollision:
    def test_points_on_lattice(self):
        e1, e2 = 0.1 + 0.01j, -0.02 + 0.09j
        diffs = synthesize_collision(e1, e2, 50, noise_std=0.0,
                                     rng=0)
        lattice = {a * e1 + b * e2 for a in (-1, 0, 1)
                   for b in (-1, 0, 1)}
        for d in diffs:
            assert min(abs(d - p) for p in lattice) < 1e-9


class TestFig01Traces:
    def test_keys_and_lengths(self):
        data = traces(duration_s=2.0, sample_rate_hz=50.0, rng=0)
        assert set(data) == {"time_s", "people_movement",
                             "tag_rotation", "coupled_tag_a",
                             "coupled_tag_b"}
        n = data["time_s"].size
        for key in ("people_movement", "tag_rotation",
                    "coupled_tag_a"):
            assert data[key].size == n


class TestScalingHelper:
    def test_monotone_in_samples_per_bit(self):
        small = max_tags_for_collision_budget(250.0)
        big = max_tags_for_collision_budget(2500.0)
        assert big > small

    def test_budget_respected(self):
        from repro.analysis.collision_prob import \
            collision_probability_at_least
        n = max_tags_for_collision_budget(250.0, budget=0.01)
        p = collision_probability_at_least(
            n, 3, n_positions=250.0, window=4.0,
            toggle_probability=0.5)
        assert p <= 0.01
        p_next = collision_probability_at_least(
            n + 1, 3, n_positions=250.0, window=4.0,
            toggle_probability=0.5)
        assert p_next > 0.01


class TestTogglesPerBit:
    def test_values(self):
        assert toggles_per_bit("ask") == 0.5
        assert toggles_per_bit("fsk") == 8.0
        assert toggles_per_bit("qam16") == 0.25

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            toggles_per_bit("psk")


class TestFormatting:
    def test_fmt_variants(self):
        assert _fmt(None) == "-"
        assert _fmt(0.0) == "0"
        assert _fmt(1234.5) == "1.23e+03"
        assert _fmt(0.001) == "0.001"
        assert _fmt(3.14159) == "3.142"
        assert _fmt("text") == "text"

    def test_empty_result_formats(self):
        result = ExperimentResult(experiment_id="x",
                                  description="empty")
        assert "(no rows)" in result.format_table()

    def test_union_of_row_keys(self):
        result = ExperimentResult(
            experiment_id="x", description="d",
            rows=[{"a": 1}, {"a": 2, "b": 3}])
        table = result.format_table()
        assert "b" in table.splitlines()[1]

    def test_none_cells_render_as_dash(self):
        result = ExperimentResult(
            experiment_id="x", description="d",
            rows=[{"a": 1, "b": None}, {"a": None, "b": 2}])
        lines = result.format_table().splitlines()
        assert all("None" not in line for line in lines)
        assert any("-" in line for line in lines[2:])

    def test_ragged_rows_format_with_dashes(self):
        """Rows missing a column entirely still format (as '-')."""
        result = ExperimentResult(
            experiment_id="x", description="d",
            rows=[{"a": 1}, {"b": 2}])
        table = result.format_table()
        assert "a" in table and "b" in table
        assert "-" in table


class TestColumnAccessor:
    def test_column_extracts_values(self):
        result = ExperimentResult(
            experiment_id="x", description="d",
            rows=[{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert result.column("a") == [1, 3]

    def test_ragged_rows_raise_with_missing_indexes(self):
        from repro.errors import ConfigurationError
        result = ExperimentResult(
            experiment_id="x", description="d",
            rows=[{"a": 1}, {"b": 2}, {"a": 3}, {"b": 4}])
        with pytest.raises(ConfigurationError) as excinfo:
            result.column("a")
        # The error names the offending rows, not just the key.
        assert "a" in str(excinfo.value)

    def test_none_valued_cells_are_not_missing(self):
        result = ExperimentResult(
            experiment_id="x", description="d",
            rows=[{"a": None}, {"a": 5}])
        assert result.column("a") == [None, 5]
