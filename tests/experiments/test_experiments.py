"""Smoke and invariant tests for every experiment runner.

Each experiment runs in quick mode and its key paper-shape invariants
are asserted — who wins, by roughly what factor, in which direction.
"""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments import REGISTRY, run_experiment


class TestRegistry:
    def test_all_experiments_registered(self):
        paper_artefacts = {"fig1", "fig2", "fig4", "fig5", "fig8",
                           "fig9", "fig10", "fig11", "fig12", "fig13",
                           "fig14", "table1", "table2", "table3",
                           "sec33", "sec54"}
        extensions = {"sec36", "sec52", "sec6", "ablation_drift",
                      "ablation_analog"}
        assert set(REGISTRY) == paper_artefacts | extensions

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")


class TestStaticExperiments:
    def test_table3_matches_paper_exactly(self):
        result = run_experiment("table3")
        for row in result.rows:
            assert row["transistors_without_fifo"] == \
                row["paper_without_fifo"]
            assert row["transistors_with_1k_fifo"] == \
                row["paper_with_fifo"]

    def test_sec54_ranges(self):
        result = run_experiment("sec54")
        by_ask = {row["ask_range_ft"]: row for row in result.rows[:2]}
        assert by_ask[10.0]["lf_range_ft"] == pytest.approx(7.94,
                                                            abs=0.1)
        assert by_ask[30.0]["lf_range_ft"] == pytest.approx(23.8,
                                                            abs=0.3)

    def test_sec33_probabilities(self):
        result = run_experiment("sec33", quick=True)
        rows = {r["case"]: r for r in result.rows}
        two_way = rows["16 nodes @100kbps, 2-way"]
        assert two_way["analytic"] == pytest.approx(0.189, abs=0.02)
        assert two_way["monte_carlo"] == pytest.approx(
            two_way["analytic"], abs=0.03)
        three_way = rows["16 nodes @100kbps, 3-way"]
        assert three_way["analytic"] == pytest.approx(0.018,
                                                      abs=0.01)

    def test_fig4_jitter_properties(self):
        result = run_experiment("fig4", quick=True)
        rows = {r["quantity"]: r["value_bit_periods"]
                for r in result.rows}
        # Lower energy charges slower.
        assert rows["crossing_time_energy_0.8"] > \
            rows["crossing_time_energy_1.2"]
        # Phases spread over a useful fraction of the bit period.
        assert rows["phase_std"] > 0.15
        assert rows["fire_time_spread"] > 1.0


class TestSignalExperiments:
    def test_fig1_dynamics_shape(self):
        result = run_experiment("fig1", quick=True)
        rows = {r["scenario"]: r for r in result.rows}
        # Coupled tags are static while far apart, dynamic when close.
        assert rows["coupled_tag_a"]["excursion_first_half"] == 0.0
        assert rows["coupled_tag_a"]["excursion_second_half"] > 0.01
        assert rows["people_movement"]["excursion_total"] > 0.05

    def test_fig2_cluster_collapse(self):
        result = run_experiment("fig2", quick=True)
        rows = {r["scenario"]: r for r in result.rows}
        assert rows["2_tags"]["n_clusters"] == 4
        assert rows["6_tags"]["n_clusters"] == 64
        assert rows["6_tags"]["symbol_accuracy"] < \
            rows["2_tags"]["symbol_accuracy"]

    def test_fig5_basis_recovery(self):
        result = run_experiment("fig5", quick=True)
        for row in result.rows:
            assert row["mean_basis_error"] < 0.15

    def test_table1_exact_recovery(self):
        result = run_experiment("table1")
        row = result.rows[0]
        assert row["bit_errors"] == 0
        assert row["anchor_resolved"]
        assert row["sent_bits"] == row["decoded_bits"]


class TestEvaluationExperiments:
    def test_fig8_ordering(self):
        result = run_experiment("fig8", quick=True)
        for row in result.rows:
            assert row["lf_x"] > row["buzz_x"] > row["tdma_x"] * 0.99
            assert row["lf_x"] <= row["max_x"]
        last = result.rows[-1]
        assert last["lf_x"] / last["tdma_x"] > 0.7 * last["max_x"]

    def test_fig9_stage_ordering(self):
        result = run_experiment("fig9", quick=True)
        for row in result.rows:
            assert row["edge_iq_x"] >= row["edge_x"] * 0.95
            assert row["edge_iq_error_x"] >= row["edge_iq_x"] * 0.95

    def test_fig12_latency_ordering(self):
        result = run_experiment("fig12", quick=True)
        for row in result.rows:
            assert row["lf_x_id_airtime"] < row["buzz_x_id_airtime"] \
                < row["tdma_x_id_airtime"]
        assert result.rows[-1]["tdma_over_lf"] > 3.0

    def test_fig13_efficiency_ordering(self):
        result = run_experiment("fig13", quick=True)
        for row in result.rows:
            assert row["lf_bits_per_uj"] > row["buzz_bits_per_uj"] \
                > row["tdma_bits_per_uj"]
        # LF efficiency stays roughly flat with tag count.
        firsts = result.rows[0]["lf_bits_per_uj"]
        lasts = result.rows[-1]["lf_bits_per_uj"]
        assert lasts > 0.5 * firsts

    def test_fig14_gap_direction(self):
        result = run_experiment("fig14", quick=True)
        worse = sum(1 for row in result.rows
                    if row["lf_ber"] >= row["ask_ber"])
        assert worse >= len(result.rows) - 1
        assert result.rows[-1]["lf_ber"] < 0.05


class TestResultFormatting:
    def test_format_table_contains_columns(self):
        result = run_experiment("table3")
        text = result.format_table()
        assert "design" in text
        assert "22704" in text

    def test_column_accessor(self):
        result = run_experiment("table3")
        col = result.column("design")
        assert "Buzz" in col

    def test_column_missing_key(self):
        result = run_experiment("table3")
        with pytest.raises(ConfigurationError):
            result.column("nonexistent")


class TestExtensions:
    def test_sec36_reliability_converges(self):
        result = run_experiment("sec36", quick=True)
        for row in result.rows:
            assert row["delivery_ratio"] == 1.0
            assert row["mean_epochs_to_complete"] <= 8

    def test_ablation_drift_claim(self):
        result = run_experiment("ablation_drift", quick=True)
        by_drift = {r["drift_ppm"]: r["goodput_fraction"]
                    for r in result.rows}
        # Within the 200 ppm budget the decoder barely notices; at the
        # Moo DCO's drift class (40,000 ppm) it collapses.
        assert by_drift[200.0] > 0.8
        assert by_drift[40000.0] < 0.7 * by_drift[0.0]

    def test_ablation_analog_helps_at_low_snr(self):
        result = run_experiment("ablation_analog", quick=True)
        low = result.rows[0]
        assert low["acquired_with_fallback"] >= low["acquired_without"]


    def test_sec52_scaling(self):
        result = run_experiment("sec52", quick=True)
        analytic = [r for r in result.rows
                    if r["max_tags_p3_below_1pct"] > 0]
        by_rate = {r["rate_x"]: r for r in analytic}
        # Lower rates buy more edge-packing headroom and tag capacity:
        # the paper's "few hundred tags" at a tenth of the rate.
        assert by_rate[0.1]["max_tags_p3_below_1pct"] > \
            3 * by_rate[1.0]["max_tags_p3_below_1pct"]
        assert by_rate[0.1]["max_tags_p3_below_1pct"] >= 100
        empirical = result.rows[-1]
        assert empirical["empirical_goodput_fraction"] > 0.8

    def test_sec6_modulation(self):
        result = run_experiment("sec6")
        by_mod = {r["modulation"]: r for r in result.rows}
        ask = by_mod["ask (LF-Backscatter)"]
        assert by_mod["fsk"]["energy_pj_per_bit"] > \
            3 * ask["energy_pj_per_bit"]
        assert by_mod["qam16"]["tag_transistors"] > \
            5 * ask["tag_transistors"]
