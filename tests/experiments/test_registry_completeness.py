"""Every registered experiment has a benchmark runner.

The ``benchmarks/test_*.py`` modules are how CI actually executes each
experiment end to end; an experiment registered without a runner is
silent dead weight, and a runner without a registry id is orphaned.
The id-to-filename convention: ``fig8`` -> ``test_fig08_*.py``
(two-digit figure numbers), everything else matches its module name
prefix (``sec36`` -> ``test_sec36_*.py``).
"""

import re
from pathlib import Path

from repro.experiments import REGISTRY

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"

#: Benchmark modules that measure infrastructure, not experiments.
NON_EXPERIMENT_RUNNERS = {"test_decoder_speed", "test_session_speed"}


def _runner_prefix(experiment_id: str) -> str:
    match = re.fullmatch(r"(fig|table|sec)(\d+)(.*)", experiment_id)
    if match and match.group(1) == "fig":
        return f"test_fig{int(match.group(2)):02d}"
    return f"test_{experiment_id}"


def _bench_stems() -> set:
    return {path.stem for path in BENCH_DIR.glob("test_*.py")}


class TestRegistryCompleteness:
    def test_every_experiment_has_a_benchmark_runner(self):
        stems = _bench_stems()
        missing = sorted(
            eid for eid in REGISTRY
            if not any(stem.startswith(_runner_prefix(eid))
                       for stem in stems))
        assert not missing, (
            f"experiments without a benchmarks/test_*.py runner: "
            f"{missing}")

    def test_every_runner_maps_back_to_an_experiment(self):
        prefixes = {_runner_prefix(eid) for eid in REGISTRY}
        orphans = sorted(
            stem for stem in _bench_stems()
            if stem not in NON_EXPERIMENT_RUNNERS
            and not any(stem.startswith(prefix)
                        for prefix in prefixes))
        assert not orphans, (
            f"benchmark runners with no registry id: {orphans}")
