"""Fixed-seed row pinning for sweep-dispatched experiments.

Every experiment whose trials run through the sweep layer
(:mod:`repro.experiments.sweep` → :class:`repro.core.engine.BatchDecoder`)
must reproduce the committed golden rows bit for bit at its default
seed — the guarantee that engine dispatch, worker counts, and future
sweep refactors never move the science output.

Regenerate deliberately after an intended output change::

    PYTHONPATH=src python tests/golden/generate_experiment_rows.py
"""

import json
import sys
from pathlib import Path

import pytest

from repro.experiments import run_experiment

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"
sys.path.insert(0, str(GOLDEN_DIR))
from generate_experiment_rows import PINNED_EXPERIMENTS  # noqa: E402

GOLDEN = json.loads((GOLDEN_DIR / "experiment_rows.json").read_text())


def test_golden_covers_all_pinned_experiments():
    assert sorted(GOLDEN) == sorted(PINNED_EXPERIMENTS)


@pytest.mark.parametrize("experiment_id", PINNED_EXPERIMENTS)
def test_rows_identical_on_fixed_seed(experiment_id):
    result = run_experiment(experiment_id, quick=True)
    fresh = json.loads(json.dumps(result.rows))
    assert fresh == GOLDEN[experiment_id]["rows"]
    assert result.notes == GOLDEN[experiment_id]["notes"]
