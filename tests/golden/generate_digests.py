#!/usr/bin/env python
"""Regenerate the golden decode digests (``decode_digests.json``).

The digests pin the decoder's *exact* output — every decoded stream's
bits, alignment, rate, collision flag and confidence, hashed with
SHA-256 over their raw bytes — for each decode entry point (cold
``LFDecoder``, warm ``SessionDecoder``, ``BatchDecoder``, and
``decode_chunked`` with and without a session) under each fidelity
mode (adaptive, ``force_full``, ``enabled=False``).

``tests/integration/test_stage_equivalence.py`` compares fresh decodes
against the stored digests: any refactor of the decode path that is
claimed to be behavior-preserving must reproduce them bit-for-bit.

Regeneration is a deliberate act (an algorithm change that is *meant*
to alter output)::

    PYTHONPATH=src python tests/golden/generate_digests.py

The fixtures are tiny (fast profile, a few epochs) so the equivalence
test stays cheap enough for tier-1.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

GOLDEN_PATH = Path(__file__).resolve().parent / "decode_digests.json"


def _build_capture(n_tags: int, seed: int, duration_s: float,
                   profile=None):
    """One deterministic multi-tag epoch capture (fast profile)."""
    from repro.phy.channel import ChannelModel, random_coefficients
    from repro.reader.simulator import NetworkSimulator
    from repro.tags.lf_tag import LFTag
    from repro.types import SimulationProfile, TagConfig

    profile = profile or SimulationProfile.fast()
    gen = np.random.default_rng(seed)
    coeffs = random_coefficients(n_tags, rng=gen)
    channel = ChannelModel({k: coeffs[k] for k in range(n_tags)},
                           environment_offset=0.5 + 0.3j)
    tags = [LFTag(TagConfig(tag_id=k, bitrate_bps=10e3,
                            channel_coefficient=coeffs[k]),
                  profile=profile,
                  rng=np.random.default_rng(gen.integers(0, 2 ** 63)))
            for k in range(n_tags)]
    sim = NetworkSimulator(tags, channel, profile=profile,
                           noise_std=0.01, rng=gen)
    return profile, sim, sim.run_epoch(duration_s)


def digest_result(result) -> str:
    """SHA-256 digest of an :class:`EpochResult`'s decoded streams.

    Streams are sorted by alignment before hashing so the digest is a
    function of *what* was decoded, not of recovery order; floats are
    hashed by their exact IEEE-754 bytes, so the digest only matches
    for bit-identical output.
    """
    h = hashlib.sha256()
    streams = sorted(result.streams,
                     key=lambda s: (s.offset_samples, s.period_samples,
                                    s.bits.tobytes()))
    h.update(np.int64(len(streams)).tobytes())
    for s in streams:
        h.update(np.asarray(s.bits, dtype=np.int8).tobytes())
        h.update(np.float64(s.offset_samples).tobytes())
        h.update(np.float64(s.period_samples).tobytes())
        h.update(np.float64(s.bitrate_bps).tobytes())
        h.update(b"\x01" if s.collided else b"\x00")
        h.update(np.complex128(s.edge_vector).tobytes())
        h.update(np.float64(s.confidence).tobytes())
    return h.hexdigest()


def compute_digests() -> dict:
    """Decode the fixed fixtures through every entry point."""
    from repro.core.engine import BatchDecoder
    from repro.core.fidelity import FidelityPolicy
    from repro.core.pipeline import LFDecoder, LFDecoderConfig
    from repro.core.session import SessionDecoder
    from repro.reader.batch import decode_chunked

    policies = {
        "adaptive": None,
        "force_full": FidelityPolicy(force_full=True),
        "disabled": FidelityPolicy(enabled=False),
    }
    digests: dict = {}

    profile, sim, capture = _build_capture(6, seed=11,
                                           duration_s=0.008)
    epochs = [capture] + [sim.run_epoch(0.008) for _ in range(2)]

    def config(policy):
        return LFDecoderConfig(candidate_bitrates_bps=[10e3],
                               profile=profile, fidelity=policy)

    for name, policy in policies.items():
        decoder = LFDecoder(config(policy), rng=1)
        digests[f"cold/{name}"] = digest_result(
            decoder.decode_epoch(capture.trace))

        warm = SessionDecoder(config(policy), rng=1)
        results = warm.decode_epochs([e.trace for e in epochs])
        digests[f"session/{name}"] = "+".join(
            digest_result(r) for r in results)

    # Batch decodes only vary by seed path, not by fidelity mode — one
    # adaptive digest per transport shape keeps the fixture fast.
    batch_serial = BatchDecoder(config(None), seed=3, max_workers=1)
    digests["batch/serial"] = "+".join(
        digest_result(r)
        for r in batch_serial.decode_epochs([e.trace for e in epochs]))
    batch_pool = BatchDecoder(config(None), seed=3, max_workers=2)
    digests["batch/pool"] = "+".join(
        digest_result(r)
        for r in batch_pool.decode_epochs([e.trace for e in epochs]))

    # One long continuous capture, chunk-decoded cold and with a warm
    # session threading state across the chunk boundary.
    profile2, _, long_capture = _build_capture(4, seed=23,
                                               duration_s=0.02)
    chunk = len(long_capture.trace) // 2 + 7
    cfg2 = LFDecoderConfig(candidate_bitrates_bps=[10e3],
                           profile=profile2)
    digests["chunked/cold"] = digest_result(
        decode_chunked(long_capture.trace, chunk, config=cfg2, seed=5,
                       max_workers=1))
    digests["chunked/session"] = digest_result(
        decode_chunked(long_capture.trace, chunk,
                       session=SessionDecoder(cfg2, rng=9)))
    return digests


def main() -> None:
    digests = compute_digests()
    GOLDEN_PATH.write_text(json.dumps(digests, indent=2,
                                      sort_keys=True) + "\n")
    print(f"wrote {len(digests)} digests to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
