#!/usr/bin/env python
"""Regenerate the golden experiment rows (``experiment_rows.json``).

The file pins the exact quick-mode ``ExperimentResult`` rows (and
notes) of every experiment whose trials dispatch through the sweep
layer, at their default seeds.  ``tests/experiments/test_row_pinning.py``
compares fresh runs against it: the sweep/engine plumbing may be
refactored freely, but on fixed seeds the science output must not move
by a single bit.

Regeneration is a deliberate act (a change that is *meant* to alter
experiment output)::

    PYTHONPATH=src python tests/golden/generate_experiment_rows.py
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).resolve().parent / "experiment_rows.json"

#: Every experiment that executes trials through the sweep layer.
PINNED_EXPERIMENTS = [
    "fig8", "fig10", "fig11", "fig14",
    "sec36", "sec52",
    "ablation_analog", "ablation_drift",
]


def generate() -> dict:
    from repro.experiments import run_experiment
    pinned = {}
    for eid in PINNED_EXPERIMENTS:
        result = run_experiment(eid, quick=True)
        pinned[eid] = {
            "rows": json.loads(json.dumps(result.rows)),
            "notes": result.notes,
        }
    return pinned


def main() -> None:
    GOLDEN_PATH.write_text(
        json.dumps(generate(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
