"""Tests for composite hardware blocks."""

import pytest

from repro.errors import HardwareModelError
from repro.hardware.components import (Component, counter, crc_checker,
                                       fifo, lfsr, logic_block,
                                       register, total_transistors)
from repro.hardware.gates import Gate


def test_register_count():
    assert register("r", 8).transistors == 8 * 24


def test_counter_count():
    assert counter("c", 4).transistors == 4 * (24 + 14)


def test_lfsr_count():
    assert lfsr("pn", 31, n_taps=2).transistors == 31 * 24 + 2 * 10


def test_crc_checker_default():
    # 16 DFF + 3 XOR + 9 NAND = 384 + 30 + 36
    assert crc_checker().transistors == 450


def test_fifo_is_6t_per_bit():
    assert fifo("f", 2048).transistors == 12288


def test_logic_block_kwargs():
    block = logic_block("glue", nand2=8, inv=2)
    assert block.transistors == 8 * 4 + 2 * 2


def test_logic_block_unknown_gate():
    with pytest.raises(HardwareModelError):
        logic_block("bad", flux_capacitor=1)


def test_nested_components():
    parent = Component("top", gates={Gate.INV: 1},
                       children=[register("r", 2)])
    assert parent.transistors == 2 + 48


def test_flattened_breakdown():
    parent = Component("top", children=[register("a", 1),
                                        register("b", 2)])
    flat = parent.flattened()
    assert flat == {"top/a": 24, "top/b": 48}


def test_total_transistors():
    parts = [register("a", 1), fifo("f", 10)]
    assert total_transistors(parts) == 24 + 60


def test_validation():
    with pytest.raises(HardwareModelError):
        register("r", 0)
    with pytest.raises(HardwareModelError):
        counter("c", 0)
    with pytest.raises(HardwareModelError):
        lfsr("l", 1)
    with pytest.raises(HardwareModelError):
        fifo("f", 0)
    with pytest.raises(HardwareModelError):
        Component("")
