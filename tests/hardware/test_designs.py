"""Tests for the Table 3 tag designs — totals must match the paper."""

from repro.hardware.designs import (FIFO_BITS, buzz_design,
                                    gen2_design, lf_backscatter_design,
                                    table3)


class TestTable3Exact:
    def test_gen2(self):
        design = gen2_design()
        assert design.transistors_without_fifo == 22704
        assert design.transistors_with_fifo == 34992

    def test_buzz(self):
        design = buzz_design()
        assert design.transistors_without_fifo == 1792
        assert design.transistors_with_fifo == 14080

    def test_lf(self):
        design = lf_backscatter_design()
        assert design.transistors_without_fifo == 176
        assert design.transistors_with_fifo == 176

    def test_table3_rows(self):
        rows = table3()
        assert rows["RFID chip"] == {"without_fifo": 22704,
                                     "with_fifo": 34992}
        assert rows["Buzz"] == {"without_fifo": 1792,
                                "with_fifo": 14080}
        assert rows["LF-Backscatter"] == {"without_fifo": 176,
                                          "with_fifo": 176}


class TestStructure:
    def test_fifo_delta_consistent(self):
        """Both buffered designs pay exactly the same FIFO cost, equal
        to the published delta of 12288 transistors."""
        assert FIFO_BITS * 6 == 12288
        for design in (gen2_design(), buzz_design()):
            delta = design.transistors_with_fifo \
                - design.transistors_without_fifo
            assert delta == 12288

    def test_lf_needs_no_buffer(self):
        assert not lf_backscatter_design().needs_packet_buffer

    def test_order_of_magnitude_claims(self):
        """Section 5.3: LF needs an order of magnitude fewer
        transistors than Buzz and two orders fewer than Gen 2."""
        lf = lf_backscatter_design().transistors_without_fifo
        buzz = buzz_design().transistors_without_fifo
        gen2 = gen2_design().transistors_without_fifo
        assert buzz / lf > 10
        assert gen2 / lf > 100

    def test_breakdown_sums_to_total(self):
        for design in (gen2_design(), buzz_design(),
                       lf_backscatter_design()):
            assert sum(design.breakdown().values()) == \
                design.transistors_without_fifo
