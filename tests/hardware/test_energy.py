"""Tests for the Figure 13 energy-efficiency metric."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.energy import (efficiency_table,
                                   energy_efficiency_bits_per_uj)


class TestEfficiency:
    def test_lf_flat_in_n(self):
        """LF tags all stream concurrently, so bits/uJ is independent
        of network size."""
        e1 = energy_efficiency_bits_per_uj("lf", 1, 100e3)
        e16 = energy_efficiency_bits_per_uj("lf", 16, 16 * 100e3)
        assert e16 == pytest.approx(e1, rel=1e-9)

    def test_tdma_decays_as_1_over_n(self):
        e1 = energy_efficiency_bits_per_uj("tdma", 1, 100e3)
        e16 = energy_efficiency_bits_per_uj("tdma", 16, 100e3)
        assert e1 / e16 == pytest.approx(16.0)

    def test_paper_ratios_at_16(self):
        """Figure 13: LF is ~20x Buzz and ~100x Gen 2 at 16 nodes."""
        lf = energy_efficiency_bits_per_uj("lf", 16, 16 * 100e3 * 0.95)
        buzz = energy_efficiency_bits_per_uj("buzz", 16, 200e3)
        tdma = energy_efficiency_bits_per_uj("tdma", 16, 100e3)
        assert 12 < lf / buzz < 30
        assert 70 < lf / tdma < 200

    def test_lf_absolute_scale(self):
        """The paper's Figure 13 peaks around ~3000 bits/uJ."""
        lf = energy_efficiency_bits_per_uj("lf", 16, 16 * 100e3)
        assert 1500 < lf < 6000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            energy_efficiency_bits_per_uj("lf", 0, 100e3)
        with pytest.raises(ConfigurationError):
            energy_efficiency_bits_per_uj("lf", 4, -1.0)


class TestEfficiencyTable:
    def test_shape(self):
        table = efficiency_table({
            "lf": {4: 400e3, 8: 800e3},
            "tdma": {4: 100e3, 8: 100e3},
        })
        assert set(table) == {"lf", "tdma"}
        assert set(table["lf"]) == {4, 8}
        assert table["lf"][8] > table["tdma"][8]
