"""Tests for gate-level transistor counts."""

import pytest

from repro.errors import HardwareModelError
from repro.hardware.gates import (Gate, TRANSISTORS_PER_GATE,
                                  transistor_count)


def test_all_gates_have_counts():
    for gate in Gate:
        assert gate in TRANSISTORS_PER_GATE
        assert TRANSISTORS_PER_GATE[gate] > 0


def test_canonical_values():
    assert TRANSISTORS_PER_GATE[Gate.INV] == 2
    assert TRANSISTORS_PER_GATE[Gate.NAND2] == 4
    assert TRANSISTORS_PER_GATE[Gate.DFF] == 24
    assert TRANSISTORS_PER_GATE[Gate.SRAM_CELL] == 6


def test_transistor_count_sums():
    total = transistor_count({Gate.DFF: 2, Gate.NAND2: 3})
    assert total == 2 * 24 + 3 * 4


def test_empty_inventory():
    assert transistor_count({}) == 0


def test_negative_count_rejected():
    with pytest.raises(HardwareModelError):
        transistor_count({Gate.INV: -1})


def test_unknown_gate_rejected():
    with pytest.raises(HardwareModelError):
        transistor_count({"not_a_gate": 1})
