"""Tests for the tag power model."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.designs import lf_backscatter_design
from repro.hardware.power import (CARRIER_COMPARATOR, PowerModel,
                                  RTC_CLOCK, default_tag_power_w)


class TestPowerModel:
    def test_digital_power_scales_with_transistors_and_clock(self):
        model = PowerModel()
        base = model.digital_power_w(1000, 100e3)
        assert model.digital_power_w(2000, 100e3) > base
        assert model.digital_power_w(1000, 200e3) > base

    def test_leakage_floor(self):
        model = PowerModel()
        assert model.digital_power_w(1000, 0.0) == pytest.approx(
            1000 * model.leakage_per_transistor_w)

    def test_rf_switch_power(self):
        model = PowerModel()
        p = model.rf_switch_power_w(100e3, toggle_probability=0.5)
        assert p == pytest.approx(100e3 * 0.5
                                  * model.rf_switch_energy_j)

    def test_tag_power_composition(self):
        model = PowerModel()
        design = lf_backscatter_design()
        analog = [RTC_CLOCK, CARRIER_COMPARATOR]
        total = model.tag_power_w(design, 100e3, analog)
        parts = (model.digital_power_w(176, 100e3)
                 + model.rf_switch_power_w(100e3)
                 + RTC_CLOCK.power_w + CARRIER_COMPARATOR.power_w)
        assert total == pytest.approx(parts)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerModel(supply_v=0.0)
        model = PowerModel()
        with pytest.raises(ConfigurationError):
            model.digital_power_w(-1, 100e3)
        with pytest.raises(ConfigurationError):
            model.rf_switch_power_w(0.0)
        with pytest.raises(ConfigurationError):
            model.rf_switch_power_w(1e3, toggle_probability=2.0)


class TestCalibration:
    """The per-scheme draws must land in the regimes the paper cites."""

    def test_lf_tens_of_microwatts(self):
        p = default_tag_power_w("lf")
        assert 10e-6 < p < 60e-6

    def test_buzz_between(self):
        lf = default_tag_power_w("lf")
        buzz = default_tag_power_w("buzz")
        gen2 = default_tag_power_w("tdma")
        assert lf < buzz < gen2

    def test_gen2_hundreds_of_microwatts(self):
        p = default_tag_power_w("tdma")
        assert 100e-6 < p < 500e-6

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            default_tag_power_w("wifi")
