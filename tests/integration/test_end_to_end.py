"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.analysis.throughput import match_streams, score_epoch
from repro.types import SimulationProfile
from repro.utils.serialization import load_trace, save_trace

from ..conftest import build_decoder, build_network


class TestFullPipeline:
    def test_multi_epoch_consistency(self, fast_profile):
        """Decoding several epochs of the same network keeps working
        as offsets re-randomize epoch to epoch."""
        sim = build_network(3, fast_profile, seed=21)
        decoder = build_decoder(fast_profile)
        fractions = []
        for k in range(3):
            capture = sim.run_epoch(0.01, epoch_index=k)
            result = decoder.decode_epoch(capture.trace)
            report = score_epoch(capture, result)
            fractions.append(report.goodput_fraction)
        assert np.mean(fractions) > 0.85

    def test_offline_decode_from_saved_trace(self, fast_profile,
                                             tmp_path):
        """The recorded-IQ workflow: capture, save, reload, decode."""
        sim = build_network(2, fast_profile, seed=22)
        capture = sim.run_epoch(0.01)
        path = save_trace(capture.trace, tmp_path / "capture.npz")
        reloaded = load_trace(path)
        decoder = build_decoder(fast_profile)
        result = decoder.decode_epoch(reloaded)
        matches = match_streams(capture, result)
        assert all(m.matched for m in matches)

    def test_decoder_deterministic_for_same_trace(self, fast_profile):
        sim = build_network(2, fast_profile, seed=23)
        capture = sim.run_epoch(0.01)
        res_a = build_decoder(fast_profile, seed=5).decode_epoch(
            capture.trace)
        res_b = build_decoder(fast_profile, seed=5).decode_epoch(
            capture.trace)
        assert res_a.n_streams == res_b.n_streams
        for sa, sb in zip(res_a.streams, res_b.streams):
            np.testing.assert_array_equal(sa.bits, sb.bits)

    def test_higher_noise_degrades_gracefully(self, fast_profile):
        scores = []
        for noise in (0.005, 0.08):
            sim = build_network(2, fast_profile, noise_std=noise,
                                seed=24)
            capture = sim.run_epoch(0.01)
            result = build_decoder(fast_profile).decode_epoch(
                capture.trace)
            report = score_epoch(capture, result)
            scores.append(report.goodput_fraction)
        assert scores[0] >= scores[1]

    def test_paper_profile_also_works(self):
        """The 25 Msps paper profile exercises identical code paths."""
        profile = SimulationProfile.paper()
        sim = build_network(2, profile, bitrate_bps=100e3, seed=25)
        capture = sim.run_epoch(0.0015)  # 150 bits at 100 kbps
        decoder = build_decoder(profile, bitrates=(100e3,))
        result = decoder.decode_epoch(capture.trace)
        matches = match_streams(capture, result)
        assert all(m.matched for m in matches)
        assert sum(m.bit_errors for m in matches) \
            <= 0.05 * sum(m.bits_sent for m in matches)


class TestFaultInjection:
    def test_spurious_edges_rejected(self, fast_profile):
        """Random impulse glitches must not create phantom streams."""
        sim = build_network(1, fast_profile, seed=26)
        capture = sim.run_epoch(0.01)
        samples = capture.trace.samples.copy()
        rng = np.random.default_rng(0)
        glitch_positions = rng.integers(100, samples.size - 100, 15)
        samples[glitch_positions] += 0.3 + 0.2j
        from repro.types import IQTrace
        glitched = IQTrace(samples=samples,
                           sample_rate_hz=capture.trace.sample_rate_hz)
        result = build_decoder(fast_profile).decode_epoch(glitched)
        truth = capture.truths[0]
        matches = match_streams(capture, result)
        assert matches[0].matched
        assert matches[0].bit_errors <= 0.05 * truth.n_bits

    def test_carrier_dropout_recovers_remaining_bits(self,
                                                     fast_profile):
        """Zeroing a mid-epoch span garbles those bits but the stream
        itself survives."""
        sim = build_network(1, fast_profile, seed=27)
        capture = sim.run_epoch(0.012)
        samples = capture.trace.samples.copy()
        samples[12_000:13_000] = 0.0
        from repro.types import IQTrace
        damaged = IQTrace(samples=samples,
                          sample_rate_hz=capture.trace.sample_rate_hz)
        result = build_decoder(fast_profile).decode_epoch(damaged)
        matches = match_streams(capture, result)
        truth = capture.truths[0]
        assert matches[0].matched
        # At most the dropout region (plus margins) is lost.
        assert matches[0].bit_errors < 0.35 * truth.n_bits
