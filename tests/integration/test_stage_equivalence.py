"""Golden-digest equivalence: the stage graph decodes bit-identically.

``tests/golden/decode_digests.json`` was generated from the decode
path *before* the stage-graph extraction (and is regenerated only as a
deliberate act, see ``tests/golden/generate_digests.py``).  These
tests decode the same fixtures through every entry point — cold
``LFDecoder``, warm ``SessionDecoder``, ``BatchDecoder`` serial and
pooled, ``decode_chunked`` cold and sessioned — under every fidelity
mode, and require the stored digests bit-for-bit.

The observer variants re-run the cold decode with a recording
:class:`StageObserver` attached and require the *same* digest:
observation is a read-only tap, zero-cost to correctness.
"""

import json
from pathlib import Path

import pytest

from repro.core.fidelity import FidelityPolicy
from repro.core.pipeline import LFDecoder, LFDecoderConfig
from repro.core.session_decoder import SessionDecoder
from repro.core.stages import StageObserver

from ..golden.generate_digests import (GOLDEN_PATH, _build_capture,
                                       compute_digests, digest_result)

_GOLDEN = json.loads(GOLDEN_PATH.read_text())


class TestGoldenDigests:
    @pytest.fixture(scope="class")
    def fresh(self):
        return compute_digests()

    @pytest.mark.parametrize("key", sorted(_GOLDEN))
    def test_digest_matches_pre_refactor_pin(self, fresh, key):
        assert fresh[key] == _GOLDEN[key], (
            f"decode output changed for {key}; if intentional, "
            f"regenerate tests/golden/decode_digests.json")

    def test_every_entry_point_is_pinned(self, fresh):
        assert set(fresh) == set(_GOLDEN)


class _RecordingObserver(StageObserver):
    def __init__(self):
        self.events = []

    def on_stage_start(self, stage, ctx):
        self.events.append(("start", stage.name))

    def on_stage_end(self, stage, ctx, elapsed_s):
        self.events.append(("end", stage.name))
        assert elapsed_s >= 0.0

    def on_stream_fault(self, fault, ctx):
        self.events.append(("fault", fault.stage))


class TestObserverZeroCost:
    """An attached observer must not change decode output at all."""

    @pytest.fixture(scope="class")
    def fixture(self):
        profile, _, capture = _build_capture(6, seed=11,
                                             duration_s=0.008)
        return profile, capture

    @pytest.mark.parametrize("name,policy", [
        ("adaptive", None),
        ("force_full", FidelityPolicy(force_full=True)),
        ("disabled", FidelityPolicy(enabled=False)),
    ])
    def test_observed_cold_decode_matches_golden(self, fixture, name,
                                                 policy):
        profile, capture = fixture
        config = LFDecoderConfig(candidate_bitrates_bps=[10e3],
                                 profile=profile, fidelity=policy)
        decoder = LFDecoder(config, rng=1)
        observer = _RecordingObserver()
        decoder.add_observer(observer)
        digest = digest_result(decoder.decode_epoch(capture.trace))
        assert digest == _GOLDEN[f"cold/{name}"]
        assert observer.events  # the taps actually fired

    def test_observed_session_decode_matches_golden(self, fixture):
        profile, _ = fixture
        _, sim, capture = _build_capture(6, seed=11,
                                         duration_s=0.008)
        epochs = [capture] + [sim.run_epoch(0.008) for _ in range(2)]
        config = LFDecoderConfig(candidate_bitrates_bps=[10e3],
                                 profile=profile)
        warm = SessionDecoder(config, rng=1)
        warm.add_observer(_RecordingObserver())
        digest = "+".join(
            digest_result(r)
            for r in warm.decode_epochs([e.trace for e in epochs]))
        assert digest == _GOLDEN["session/adaptive"]

    def test_observer_sees_balanced_start_end_pairs(self, fixture):
        profile, capture = fixture
        config = LFDecoderConfig(candidate_bitrates_bps=[10e3],
                                 profile=profile)
        decoder = LFDecoder(config, rng=1)
        observer = _RecordingObserver()
        decoder.add_observer(observer)
        decoder.decode_epoch(capture.trace)
        starts = [n for kind, n in observer.events if kind == "start"]
        ends = [n for kind, n in observer.events if kind == "end"]
        # Every stage that started also ended (nesting reorders the
        # end events: the ``streams`` driver ends after its children).
        assert sorted(starts) == sorted(ends)
        # Epoch stages appear in graph order.
        epoch_names = [n for n in starts
                       if n in ("guard", "edge", "fold", "streams",
                                "fallback", "dedup")]
        assert epoch_names[:4] == ["guard", "edge", "fold", "streams"]

    def test_remove_observer_detaches_it(self, fixture):
        profile, capture = fixture
        config = LFDecoderConfig(candidate_bitrates_bps=[10e3],
                                 profile=profile)
        decoder = LFDecoder(config, rng=1)
        observer = _RecordingObserver()
        decoder.add_observer(observer)
        decoder.remove_observer(observer)
        decoder.decode_epoch(capture.trace)
        assert observer.events == []
