"""CRC known-answer and structural tests."""

import numpy as np

from repro.analysis.latency import CRC5_POLY, crc5
from repro.link.reliability import CRC16_POLY, crc16


def bits_of(value: int, width: int) -> np.ndarray:
    return np.array([(value >> (width - 1 - i)) & 1
                     for i in range(width)], dtype=np.int8)


class TestCrc16Structure:
    def test_polynomial_is_ccitt(self):
        assert CRC16_POLY == 0x1021

    def test_linearity_over_common_prefix(self):
        """CRC(prefix+a) xor CRC(prefix+b) == CRC(prefix+(a^b)) xor
        CRC(prefix+0): the CRC register is affine in the message."""
        rng = np.random.default_rng(0)
        prefix = rng.integers(0, 2, 24).astype(np.int8)
        a = rng.integers(0, 2, 16).astype(np.int8)
        b = rng.integers(0, 2, 16).astype(np.int8)
        zero = np.zeros(16, dtype=np.int8)

        def r(tail):
            return crc16(np.concatenate([prefix, tail]))

        lhs = r(a) ^ r(b)
        rhs = r(a ^ b) ^ r(zero)
        np.testing.assert_array_equal(lhs, rhs)

    def test_distinct_messages_usually_distinct_crc(self):
        rng = np.random.default_rng(1)
        seen = set()
        for _ in range(200):
            msg = rng.integers(0, 2, 48).astype(np.int8)
            seen.add(tuple(crc16(msg)))
        # 200 random messages over a 16-bit CRC: collisions are rare.
        assert len(seen) >= 195


class TestCrc5Structure:
    def test_polynomial_is_usb(self):
        assert CRC5_POLY == 0b00101

    def test_affine_property(self):
        rng = np.random.default_rng(2)
        prefix = rng.integers(0, 2, 10).astype(np.int8)
        a = rng.integers(0, 2, 8).astype(np.int8)
        b = rng.integers(0, 2, 8).astype(np.int8)
        zero = np.zeros(8, dtype=np.int8)

        def r(tail):
            return crc5(np.concatenate([prefix, tail]))

        np.testing.assert_array_equal(r(a) ^ r(b),
                                      r(a ^ b) ^ r(zero))

    def test_leading_zero_sensitivity(self):
        """Appending the message after zeros changes the remainder
        (the register is non-zero initialized... CRC5 here starts at
        zero, so leading zeros are absorbed — verify the actual
        behaviour so it is pinned)."""
        msg = np.array([1, 0, 1, 1], dtype=np.int8)
        padded = np.concatenate([np.zeros(3, dtype=np.int8), msg])
        same = np.array_equal(crc5(msg), crc5(padded))
        assert same  # zero-initialized register absorbs leading zeros
