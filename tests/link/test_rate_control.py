"""Tests for reader-commanded rate control (Section 3.6)."""

import pytest

from repro.errors import ConfigurationError
from repro.link.rate_control import RateController
from repro.types import EpochResult, SimulationProfile


def epoch(n_streams, detected=0, resolved=0):
    return EpochResult(
        streams=[None] * 0,  # stream objects unused by the controller
        n_collisions_detected=detected,
        n_collisions_resolved=resolved,
    ) if n_streams == 0 else _epoch_with(n_streams, detected, resolved)


def _epoch_with(n_streams, detected, resolved):
    from repro.types import DecodedStream
    import numpy as np
    streams = [DecodedStream(bits=np.array([1, 0], dtype=np.int8),
                             offset_samples=0.0, period_samples=250.0,
                             bitrate_bps=10e3)
               for _ in range(n_streams)]
    return EpochResult(streams=streams,
                       n_collisions_detected=detected,
                       n_collisions_resolved=resolved)


def make_controller(**kwargs):
    return RateController(10e3, profile=SimulationProfile.fast(),
                          **kwargs)


class TestReduction:
    def test_healthy_epochs_keep_rate(self):
        ctl = make_controller()
        decision = ctl.observe(epoch(8), expected_streams=8)
        assert not decision.changed
        assert ctl.current_bitrate_bps == 10e3

    def test_many_misses_halve_rate(self):
        ctl = make_controller()
        decision = ctl.observe(epoch(4), expected_streams=8)
        assert decision.changed
        assert ctl.current_bitrate_bps == 5e3

    def test_unresolved_collisions_count(self):
        ctl = make_controller()
        decision = ctl.observe(epoch(8, detected=4, resolved=0),
                               expected_streams=8)
        assert decision.changed

    def test_resolved_collisions_do_not_count(self):
        ctl = make_controller()
        decision = ctl.observe(epoch(8, detected=4, resolved=4),
                               expected_streams=8)
        assert not decision.changed

    def test_floor_respected(self):
        ctl = make_controller(min_bitrate_bps=2.5e3)
        for _ in range(6):
            ctl.observe(epoch(0), expected_streams=8)
        assert ctl.current_bitrate_bps >= 2.5e3

    def test_rate_stays_multiple_of_base(self):
        ctl = make_controller()
        for _ in range(4):
            ctl.observe(epoch(1), expected_streams=8)
            multiple = ctl.current_bitrate_bps / 10.0  # fast base rate
            assert multiple == int(multiple)


class TestRecovery:
    def test_recovers_after_clean_streak(self):
        ctl = make_controller(recover_after=2)
        ctl.observe(epoch(2), expected_streams=8)   # halve to 5k
        assert ctl.current_bitrate_bps == 5e3
        ctl.observe(epoch(8), expected_streams=8)
        decision = ctl.observe(epoch(8), expected_streams=8)
        assert decision.changed
        assert ctl.current_bitrate_bps == 10e3

    def test_never_exceeds_initial(self):
        ctl = make_controller(recover_after=1)
        for _ in range(5):
            ctl.observe(epoch(8), expected_streams=8)
        assert ctl.current_bitrate_bps == 10e3

    def test_trouble_resets_streak(self):
        ctl = make_controller(recover_after=2)
        ctl.observe(epoch(2), expected_streams=8)   # halve
        ctl.observe(epoch(8), expected_streams=8)   # clean 1
        ctl.observe(epoch(2), expected_streams=8)   # trouble again
        assert ctl.current_bitrate_bps == 2.5e3


class TestValidation:
    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            make_controller(reduce_threshold=0.0)
        with pytest.raises(ConfigurationError):
            make_controller(recover_after=0)
        with pytest.raises(ConfigurationError):
            make_controller(min_bitrate_bps=20e3)
        ctl = make_controller()
        with pytest.raises(ConfigurationError):
            ctl.observe(epoch(1), expected_streams=0)

    def test_history_recorded(self):
        ctl = make_controller()
        ctl.observe(epoch(8), expected_streams=8)
        ctl.observe(epoch(1), expected_streams=8)
        assert len(ctl.history) == 2
        assert ctl.history[1].changed
