"""Tests for the Broadcast-ACK reliable transfer layer (Section 3.6)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.link.reliability import (ReliableLink,
                                    ReliableTransferConfig,
                                    append_crc16, check_crc16, crc16)
from repro.types import SimulationProfile


class TestCrc16:
    def test_length(self):
        assert crc16(np.ones(64, dtype=np.int8)).size == 16

    def test_round_trip(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            msg = rng.integers(0, 2, 64).astype(np.int8)
            assert check_crc16(append_crc16(msg))

    def test_detects_single_flips(self):
        rng = np.random.default_rng(1)
        msg = rng.integers(0, 2, 64).astype(np.int8)
        frame = append_crc16(msg)
        for pos in range(0, frame.size, 5):
            bad = frame.copy()
            bad[pos] ^= 1
            assert not check_crc16(bad)

    def test_detects_bursts(self):
        """CRC-16 catches all bursts up to 16 bits."""
        rng = np.random.default_rng(2)
        msg = rng.integers(0, 2, 64).astype(np.int8)
        frame = append_crc16(msg)
        for start in range(0, 48, 7):
            bad = frame.copy()
            bad[start:start + 12] ^= 1
            assert not check_crc16(bad)

    def test_short_frame_invalid(self):
        assert not check_crc16(np.ones(10, dtype=np.int8))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            crc16(np.empty(0, dtype=np.int8))


class TestReliableLink:
    def test_small_network_delivers_everything(self):
        link = ReliableLink(
            3, ReliableTransferConfig(message_bits=48, max_epochs=10),
            profile=SimulationProfile.fast(), rng=0)
        outcome = link.run()
        assert outcome.complete
        assert outcome.epochs_used <= 5
        assert outcome.delivery_ratio == 1.0

    def test_delivered_tags_fall_silent(self):
        """Epoch deliveries are cumulative: the pending set shrinks."""
        link = ReliableLink(
            6, ReliableTransferConfig(message_bits=48, max_epochs=12),
            profile=SimulationProfile.fast(), rng=1)
        outcome = link.run()
        assert sum(outcome.per_epoch_deliveries) == \
            len(outcome.delivered)

    def test_retransmission_converges_after_collision(self):
        """Even when the first epoch loses messages to collisions,
        fresh offsets let retries converge (the §3.6 argument)."""
        completes = 0
        for seed in range(4):
            link = ReliableLink(
                8, ReliableTransferConfig(message_bits=48,
                                          max_epochs=12),
                profile=SimulationProfile.fast(), rng=seed)
            outcome = link.run()
            completes += int(outcome.complete)
        assert completes >= 3

    def test_messages_match_ground_truth(self):
        link = ReliableLink(
            2, ReliableTransferConfig(message_bits=32, max_epochs=8),
            profile=SimulationProfile.fast(), rng=3)
        outcome = link.run()
        assert outcome.complete
        # Delivery is defined by exact message equality + CRC.
        for tag_id in outcome.delivered:
            assert link.messages[tag_id].size == 32

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReliableLink(0)
        with pytest.raises(ConfigurationError):
            ReliableTransferConfig(message_bits=0)
        with pytest.raises(ConfigurationError):
            ReliableTransferConfig(max_epochs=0)
