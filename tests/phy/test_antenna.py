"""Tests for the radar-equation link budget (Section 5.4)."""

import pytest

from repro.errors import ConfigurationError
from repro.phy.antenna import (FEET_PER_METER, LinkBudget,
                               equivalent_range, feet_to_meters,
                               meters_to_feet)


class TestLinkBudget:
    def test_d4_law(self):
        """Doubling the distance drops received power by 16x."""
        budget = LinkBudget()
        p1 = budget.received_power_w(2.0)
        p2 = budget.received_power_w(4.0)
        assert p1 / p2 == pytest.approx(16.0)

    def test_range_for_power_inverts(self):
        budget = LinkBudget()
        power = budget.received_power_w(3.7)
        assert budget.range_for_power(power) == pytest.approx(3.7)

    def test_more_tx_power_more_range(self):
        low = LinkBudget(tx_power_w=0.5)
        high = LinkBudget(tx_power_w=2.0)
        threshold = 1e-12
        assert high.range_for_power(threshold) > \
            low.range_for_power(threshold)

    def test_dbm_conversion(self):
        budget = LinkBudget()
        w = budget.received_power_w(5.0)
        dbm = budget.received_power_dbm(5.0)
        assert dbm == pytest.approx(10 * __import__("math").log10(
            w * 1e3))

    def test_modulation_loss_reduces_power(self):
        lossless = LinkBudget(modulation_loss_db=0.0)
        lossy = LinkBudget(modulation_loss_db=6.0)
        ratio = lossless.received_power_w(2.0) \
            / lossy.received_power_w(2.0)
        assert ratio == pytest.approx(10 ** 0.6, rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinkBudget(tx_power_w=0.0)
        with pytest.raises(ConfigurationError):
            LinkBudget().received_power_w(0.0)
        with pytest.raises(ConfigurationError):
            LinkBudget().range_for_power(-1.0)


class TestEquivalentRange:
    def test_paper_values(self):
        """10 ft ASK -> ~8 ft LF; 30 ft -> ~23.8 ft at a 4 dB gap."""
        assert equivalent_range(10.0, 4.0) == pytest.approx(7.94,
                                                            abs=0.05)
        assert equivalent_range(30.0, 4.0) == pytest.approx(23.8,
                                                            abs=0.2)

    def test_zero_gap_identity(self):
        assert equivalent_range(12.0, 0.0) == 12.0

    def test_ratio_independent_of_range(self):
        r1 = equivalent_range(10.0, 4.0) / 10.0
        r2 = equivalent_range(55.0, 4.0) / 55.0
        assert r1 == pytest.approx(r2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            equivalent_range(0.0, 4.0)
        with pytest.raises(ConfigurationError):
            equivalent_range(10.0, -1.0)


def test_feet_meter_round_trip():
    assert meters_to_feet(feet_to_meters(10.0)) == pytest.approx(10.0)
    assert FEET_PER_METER == pytest.approx(3.2808, abs=1e-3)
