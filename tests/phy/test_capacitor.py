"""Tests for the capacitor-charging / comparator-jitter model (Fig 4)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.capacitor import CapacitorModel, ComparatorJitterModel


class TestCapacitorModel:
    def test_charge_curve_monotone_and_bounded(self):
        cap = CapacitorModel()
        t = np.linspace(0, 10 * cap.tau_s, 200)
        v = cap.voltage(t)
        assert np.all(np.diff(v) >= 0)
        assert v[-1] < cap.v_max
        assert v[-1] > 0.99 * cap.v_max

    def test_voltage_at_tau_is_63_percent(self):
        cap = CapacitorModel()
        v = cap.voltage(np.array([cap.tau_s]))[0]
        assert v == pytest.approx(cap.v_max * (1 - np.exp(-1)))

    def test_negative_time_clamped(self):
        cap = CapacitorModel()
        assert cap.voltage(np.array([-1.0]))[0] == 0.0

    def test_crossing_time_consistency(self):
        """The charge curve evaluated at the crossing time equals the
        threshold."""
        cap = CapacitorModel()
        t = cap.crossing_time(1.0)
        assert cap.voltage(np.array([t]))[0] == pytest.approx(1.0)

    def test_crossing_faster_with_more_energy(self):
        cap = CapacitorModel()
        assert cap.crossing_time(1.0, energy_scale=1.2) < \
            cap.crossing_time(1.0, energy_scale=1.0) < \
            cap.crossing_time(1.0, energy_scale=0.8)

    def test_crossing_scales_with_tau(self):
        cap = CapacitorModel()
        assert cap.crossing_time(1.0, tau_scale=2.0) == pytest.approx(
            2.0 * cap.crossing_time(1.0))

    def test_unreachable_threshold_rejected(self):
        cap = CapacitorModel(v_max=1.0)
        with pytest.raises(ConfigurationError):
            cap.crossing_time(1.5)
        with pytest.raises(ConfigurationError):
            cap.crossing_time(0.0)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            CapacitorModel(c_farad=0.0)


class TestComparatorJitterModel:
    def test_fire_times_positive(self):
        model = ComparatorJitterModel(rng=0)
        times = model.fire_times_s(100)
        assert np.all(times > 0)

    def test_fire_times_jitter_across_epochs(self):
        model = ComparatorJitterModel(rng=1)
        times = model.fire_times_s(50)
        assert np.std(times) > 0

    def test_deterministic_without_noise(self):
        model = ComparatorJitterModel(noise_v=0.0, rng=2)
        assert model.fire_time_s() == model.fire_time_s()

    def test_placement_factors_fixed_per_tag(self):
        model = ComparatorJitterModel(rng=3)
        assert model.energy_scale == model.energy_scale
        assert 0.75 <= model.energy_scale <= 1.25
        assert 0.8 <= model.tau_scale <= 1.2

    def test_population_spread_across_tags(self):
        """Different tags (different rngs) fire at different times —
        the natural offset randomization of Section 3.2."""
        times = [ComparatorJitterModel(rng=s).fire_time_s()
                 for s in range(30)]
        assert np.ptp(times) > 0.1 * np.mean(times)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ComparatorJitterModel(tolerance=1.5)
        with pytest.raises(ConfigurationError):
            ComparatorJitterModel(energy_spread=-0.1)
        with pytest.raises(ConfigurationError):
            ComparatorJitterModel(noise_v=-0.01)
        with pytest.raises(ConfigurationError):
            ComparatorJitterModel(rng=0).fire_times_s(-1)
