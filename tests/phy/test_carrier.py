"""Tests for carrier gating and epoch scheduling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.carrier import EpochSchedule


def test_bounds_and_durations():
    sched = EpochSchedule(epoch_duration_s=0.01, gap_s=0.001,
                          n_epochs=3)
    bounds = list(sched.epoch_bounds())
    assert len(bounds) == 3
    assert bounds[0] == (0.0, 0.01)
    assert bounds[1][0] == pytest.approx(0.011)
    assert sched.total_duration_s == pytest.approx(0.033)


def test_carrier_envelope_duty():
    sched = EpochSchedule(epoch_duration_s=0.01, gap_s=0.01,
                          n_epochs=2)
    envelope = sched.carrier_envelope(10_000.0)
    assert envelope.size == 400
    assert np.sum(envelope) == pytest.approx(200, abs=2)


def test_envelope_off_during_gap():
    sched = EpochSchedule(epoch_duration_s=0.01, gap_s=0.01,
                          n_epochs=1)
    envelope = sched.carrier_envelope(1000.0)
    assert np.all(envelope[:10] == 1.0)
    assert np.all(envelope[10:] == 0.0)


def test_fits_bits():
    sched = EpochSchedule(epoch_duration_s=0.01)
    # 10 ms at 10 kbps fits 100 bits.
    assert sched.fits_bits(10e3, 90)
    assert not sched.fits_bits(10e3, 101)
    assert not sched.fits_bits(10e3, 95, max_offset_s=0.001)


def test_validation():
    with pytest.raises(ConfigurationError):
        EpochSchedule(epoch_duration_s=0.0)
    with pytest.raises(ConfigurationError):
        EpochSchedule(epoch_duration_s=0.01, gap_s=-1.0)
    with pytest.raises(ConfigurationError):
        EpochSchedule(epoch_duration_s=0.01, n_epochs=0)
    with pytest.raises(ConfigurationError):
        EpochSchedule(epoch_duration_s=0.01).carrier_envelope(0.0)
    with pytest.raises(ConfigurationError):
        EpochSchedule(epoch_duration_s=0.01).fits_bits(0.0, 10)
