"""Tests for the backscatter channel model (Equation 1)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.channel import ChannelModel, random_coefficients


class TestRandomCoefficients:
    def test_count_and_magnitudes(self):
        coeffs = random_coefficients(10, magnitude_range=(0.05, 0.2),
                                     rng=0)
        assert len(coeffs) == 10
        for c in coeffs:
            assert 0.05 <= abs(c) <= 0.2

    def test_min_separation_respected(self):
        coeffs = random_coefficients(8, min_separation=0.03, rng=1)
        for i in range(8):
            for j in range(i + 1, 8):
                assert abs(coeffs[i] - coeffs[j]) >= 0.03

    def test_deterministic(self):
        assert random_coefficients(4, rng=5) == \
            random_coefficients(4, rng=5)

    def test_impossible_packing_raises(self):
        with pytest.raises(ConfigurationError):
            random_coefficients(100, magnitude_range=(0.01, 0.011),
                                min_separation=0.05, rng=0,
                                max_attempts=500)

    def test_zero_tags(self):
        assert random_coefficients(0) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            random_coefficients(-1)
        with pytest.raises(ConfigurationError):
            random_coefficients(2, magnitude_range=(0.2, 0.1))


class TestChannelModel:
    def test_static_coefficients(self):
        channel = ChannelModel({0: 0.1 + 0j, 1: 0.05j})
        times = np.array([0.0, 1.0, 2.0])
        np.testing.assert_allclose(channel.coefficient_at(0, times),
                                   np.full(3, 0.1 + 0j))

    def test_environment_offset(self):
        channel = ChannelModel({0: 0.1}, environment_offset=0.5 + 0.3j)
        np.testing.assert_allclose(
            channel.environment_at(np.array([0.0, 5.0])),
            np.full(2, 0.5 + 0.3j))

    def test_combine_implements_equation_1(self):
        """Received = environment + sum_i h_i * state_i."""
        channel = ChannelModel({0: 0.1 + 0j, 1: 0.2j},
                               environment_offset=1 + 1j)
        times = np.zeros(3)
        states = {0: np.array([0.0, 1.0, 1.0]),
                  1: np.array([0.0, 0.0, 1.0])}
        received = channel.combine(times, states)
        np.testing.assert_allclose(
            received, [1 + 1j, 1.1 + 1j, 1.1 + 1.2j])

    def test_combine_shape_mismatch(self):
        channel = ChannelModel({0: 0.1})
        with pytest.raises(ConfigurationError):
            channel.combine(np.zeros(3), {0: np.zeros(4)})

    def test_trajectory_overrides_static(self):
        channel = ChannelModel(
            {0: 0.1 + 0j},
            trajectories={0: lambda t: 0.1 + 0.01 * t})
        values = channel.coefficient_at(0, np.array([0.0, 10.0]))
        assert values[0] == pytest.approx(0.1)
        assert values[1] == pytest.approx(0.2)

    def test_is_static(self):
        assert ChannelModel({0: 0.1}).is_static()
        assert not ChannelModel(
            {0: 0.1}, trajectories={0: lambda t: t}).is_static()

    def test_unknown_tag_rejected(self):
        channel = ChannelModel({0: 0.1})
        with pytest.raises(ConfigurationError):
            channel.coefficient_at(5, np.zeros(1))

    def test_trajectory_for_unknown_tag_rejected(self):
        with pytest.raises(ConfigurationError):
            ChannelModel({0: 0.1}, trajectories={9: lambda t: t})

    def test_zero_coefficient_rejected(self):
        with pytest.raises(ConfigurationError):
            ChannelModel({0: 0j})

    def test_with_random_coefficients(self):
        channel = ChannelModel.with_random_coefficients([3, 7], rng=2)
        assert channel.tag_ids == [3, 7]
