"""Tests for the drifting tag clock."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.clock import DriftingClock


def test_zero_drift_is_exact():
    clock = DriftingClock(1e-4, drift_ppm=0.0)
    assert clock.actual_period_s == 1e-4
    assert clock.realized_drift_ppm == 0.0


def test_drift_within_budget():
    for seed in range(20):
        clock = DriftingClock(1e-4, drift_ppm=150.0, rng=seed)
        assert abs(clock.realized_drift_ppm) <= 150.0
        ratio = clock.actual_period_s / 1e-4
        assert abs(ratio - 1.0) <= 150e-6


def test_drift_realizations_vary():
    drifts = {DriftingClock(1e-4, 150.0, rng=s).realized_drift_ppm
              for s in range(10)}
    assert len(drifts) > 1


def test_tick_times_regular_without_jitter():
    clock = DriftingClock(1e-3, drift_ppm=0.0)
    ticks = clock.tick_times(5, start_s=1.0)
    np.testing.assert_allclose(np.diff(ticks), 1e-3)
    assert ticks[0] == 1.0


def test_tick_times_count():
    clock = DriftingClock(1e-3, drift_ppm=100.0, rng=0)
    assert clock.tick_times(0).size == 0
    assert clock.tick_times(7).size == 7


def test_jitter_is_white_not_accumulating():
    """With white jitter the k-th tick stays near k*period."""
    clock = DriftingClock(1e-3, drift_ppm=0.0, jitter_s=1e-6, rng=3)
    ticks = clock.tick_times(1000)
    residuals = ticks - np.arange(1000) * 1e-3
    assert np.std(residuals) < 5e-6  # does not grow with k
    assert abs(residuals[-1]) < 1e-5


def test_reseed_changes_drift():
    clock = DriftingClock(1e-4, drift_ppm=150.0, rng=1)
    before = clock.realized_drift_ppm
    after = clock.reseed_drift(rng=99)
    assert clock.realized_drift_ppm == after
    assert before != after


def test_validation():
    with pytest.raises(ConfigurationError):
        DriftingClock(0.0)
    with pytest.raises(ConfigurationError):
        DriftingClock(1e-3, drift_ppm=-1.0)
    with pytest.raises(ConfigurationError):
        DriftingClock(1e-3, jitter_s=-1e-9)
    with pytest.raises(ConfigurationError):
        DriftingClock(1e-3).tick_times(-1)
