"""Tests for the Figure 1 channel-dynamics generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.dynamics import (coupled_tags, people_movement,
                                tag_rotation)

BASE_A = 0.15 + 0.05j
BASE_B = -0.08 + 0.12j


class TestPeopleMovement:
    def test_wanders_around_base(self):
        traj = people_movement(BASE_A, duration_s=12.0, rng=0)
        t = np.linspace(0, 12, 500)
        values = traj(t)
        # Centered near the base but not constant.
        assert abs(values.mean() - BASE_A) < 0.2
        assert np.ptp(values.real) > 0.01

    def test_smooth(self):
        traj = people_movement(BASE_A, duration_s=12.0, rng=1)
        t = np.linspace(0, 12, 2000)
        steps = np.abs(np.diff(traj(t)))
        assert steps.max() < 0.05  # no jumps at this resolution

    def test_zero_wander_is_constant(self):
        traj = people_movement(BASE_A, wander_scale=0.0, rng=2)
        values = traj(np.linspace(0, 12, 50))
        np.testing.assert_allclose(values, BASE_A)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            people_movement(BASE_A, duration_s=0.0)
        with pytest.raises(ConfigurationError):
            people_movement(BASE_A, wander_scale=-0.1)


class TestTagRotation:
    def test_phase_advances_with_rotation(self):
        traj = tag_rotation(BASE_A, duration_s=10.0,
                            total_rotation_rad=np.pi, rng=0)
        start = traj(np.array([0.0]))[0]
        end = traj(np.array([10.0]))[0]
        rotation = np.angle(end / start)
        assert rotation == pytest.approx(np.pi, abs=0.3) or \
            rotation == pytest.approx(-np.pi, abs=0.3)

    def test_magnitude_modulated_within_depth(self):
        traj = tag_rotation(BASE_A, duration_s=10.0,
                            pattern_depth=0.4, rng=1)
        mags = np.abs(traj(np.linspace(0, 10, 400)))
        assert mags.max() <= abs(BASE_A) * 1.001
        assert mags.min() >= abs(BASE_A) * 0.59

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            tag_rotation(BASE_A, duration_s=-1.0)
        with pytest.raises(ConfigurationError):
            tag_rotation(BASE_A, pattern_depth=1.0)


class TestCoupledTags:
    def test_stable_when_far(self):
        """Both coefficients unchanged while the tags are ~1 m apart
        (the first half of Figure 1c)."""
        traj_a, traj_b = coupled_tags(BASE_A, BASE_B, duration_s=12.0,
                                      approach_start_s=6.0, rng=0)
        t_far = np.linspace(0, 5.9, 100)
        np.testing.assert_allclose(traj_a(t_far), BASE_A, atol=1e-9)
        np.testing.assert_allclose(traj_b(t_far), BASE_B, atol=1e-9)

    def test_shifts_when_near(self):
        traj_a, traj_b = coupled_tags(BASE_A, BASE_B, duration_s=12.0,
                                      approach_start_s=6.0, rng=1)
        end_a = traj_a(np.array([12.0]))[0]
        end_b = traj_b(np.array([12.0]))[0]
        assert abs(end_a - BASE_A) > 0.01
        assert abs(end_b - BASE_B) > 0.01

    def test_coupling_symmetric_in_onset(self):
        """Both tags start shifting at the same time."""
        traj_a, traj_b = coupled_tags(BASE_A, BASE_B, duration_s=12.0,
                                      approach_start_s=6.0, rng=2)
        t = np.linspace(0, 12, 600)
        moved_a = np.abs(traj_a(t) - BASE_A) > 1e-6
        moved_b = np.abs(traj_b(t) - BASE_B) > 1e-6
        np.testing.assert_array_equal(moved_a, moved_b)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            coupled_tags(BASE_A, BASE_B, near_distance_m=0.5,
                         coupling_distance_m=0.2)
        with pytest.raises(ConfigurationError):
            coupled_tags(BASE_A, BASE_B, approach_start_s=20.0,
                         duration_s=12.0)
