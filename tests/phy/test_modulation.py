"""Tests for waveform synthesis."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.modulation import (nrz_waveform, qam_constellation,
                                  toggle_positions)


class TestTogglePositions:
    def test_alternating(self):
        toggles = toggle_positions([1, 0, 1], offset_samples=100.0,
                                   period_samples=250.0)
        np.testing.assert_allclose(toggles, [100, 350, 600])

    def test_constant_ones(self):
        toggles = toggle_positions([1, 1, 1], 0.0, 10.0)
        np.testing.assert_allclose(toggles, [0.0])

    def test_initial_state_high(self):
        toggles = toggle_positions([1, 1, 0], 0.0, 10.0,
                                   initial_state=1)
        np.testing.assert_allclose(toggles, [20.0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            toggle_positions([0, 2], 0.0, 10.0)
        with pytest.raises(ConfigurationError):
            toggle_positions([1], 0.0, 0.0)
        with pytest.raises(ConfigurationError):
            toggle_positions([1], 0.0, 10.0, initial_state=2)


class TestNrzWaveform:
    def test_levels_between_edges(self):
        wave = nrz_waveform([1, 0, 1], offset_samples=10.0,
                            period_samples=20.0, n_samples=80,
                            edge_width_samples=1)
        assert np.all(wave[:10] == 0.0)
        assert np.all(wave[11:29] == 1.0)
        assert np.all(wave[31:49] == 0.0)
        assert np.all(wave[51:69] == 1.0)

    def test_edge_ramp_width(self):
        wave = nrz_waveform([1], offset_samples=50.0,
                            period_samples=100.0, n_samples=200,
                            edge_width_samples=5)
        ramp = np.flatnonzero((wave > 0.01) & (wave < 0.99))
        assert 2 <= ramp.size <= 6
        assert np.all(np.diff(wave[45:56]) >= 0)

    def test_holds_final_state(self):
        wave = nrz_waveform([1], 0.0, 10.0, 50, edge_width_samples=1)
        assert wave[-1] == 1.0

    def test_final_state_override(self):
        wave = nrz_waveform([1], 0.0, 10.0, 50, edge_width_samples=1,
                            final_state=0)
        assert wave[-1] == 0.0

    def test_fractional_offset(self):
        wave = nrz_waveform([1], offset_samples=10.5,
                            period_samples=20.0, n_samples=40,
                            edge_width_samples=3)
        assert wave[8] == pytest.approx(0.0)
        assert wave[13] == pytest.approx(1.0)
        assert 0.0 < wave[10] < 1.0

    def test_range_bounded(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 40)
        wave = nrz_waveform(bits, 12.3, 25.0, 1100)
        assert wave.min() >= 0.0
        assert wave.max() <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            nrz_waveform([1], 0.0, 10.0, 0)
        with pytest.raises(ConfigurationError):
            nrz_waveform([1], 0.0, 10.0, 10, edge_width_samples=0)


class TestQamConstellation:
    def test_unit_average_power(self):
        points = qam_constellation(order=16, noise_std=0.0, rng=0)
        assert np.mean(np.abs(points) ** 2) == pytest.approx(1.0)

    def test_cluster_count(self):
        points = qam_constellation(order=16, n_points_per_symbol=10,
                                   noise_std=0.0, rng=0)
        unique = np.unique(np.round(points, 9))
        assert unique.size == 16

    def test_order_must_be_square(self):
        with pytest.raises(ConfigurationError):
            qam_constellation(order=12)

    def test_noise_added(self):
        clean = qam_constellation(16, 50, noise_std=0.0, rng=1)
        noisy = qam_constellation(16, 50, noise_std=0.1, rng=1)
        assert np.std(noisy - clean) > 0
