"""Tests for receiver noise and SNR accounting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.noise import (awgn, measure_snr_db, noise_std_for_snr,
                             ook_signal_power)


class TestAwgn:
    def test_power_matches_std(self):
        noise = awgn(200_000, 0.1, rng=0)
        power = np.mean(np.abs(noise) ** 2)
        assert power == pytest.approx(0.01, rel=0.02)

    def test_circular(self):
        """I and Q components carry equal power."""
        noise = awgn(200_000, 1.0, rng=1)
        assert np.var(noise.real) == pytest.approx(0.5, rel=0.05)
        assert np.var(noise.imag) == pytest.approx(0.5, rel=0.05)

    def test_zero_std(self):
        noise = awgn(10, 0.0)
        np.testing.assert_array_equal(noise, np.zeros(10))

    def test_zero_mean(self):
        noise = awgn(100_000, 1.0, rng=2)
        assert abs(noise.mean()) < 0.02

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            awgn(-1, 0.1)
        with pytest.raises(ConfigurationError):
            awgn(10, -0.1)


class TestSnrConversions:
    def test_round_trip(self):
        signal_power = 0.04
        std = noise_std_for_snr(signal_power, 10.0)
        # SNR = P_sig / std^2 should be 10 dB
        measured = 10 * np.log10(signal_power / std ** 2)
        assert measured == pytest.approx(10.0)

    def test_measured_snr(self):
        rng = np.random.default_rng(7)
        signal = np.full(100_000, 0.2 + 0j)
        std = noise_std_for_snr(0.04, 6.0)
        noise = awgn(signal.size, std, rng=rng)
        assert measure_snr_db(signal, noise) == pytest.approx(6.0,
                                                              abs=0.2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            noise_std_for_snr(0.0, 10.0)
        with pytest.raises(ConfigurationError):
            measure_snr_db(np.zeros(3), np.ones(3))
        with pytest.raises(ConfigurationError):
            measure_snr_db(np.ones(3), np.zeros(3))


class TestOokPower:
    def test_full_duty(self):
        assert ook_signal_power(0.2 + 0j, duty=1.0) == \
            pytest.approx(0.04)

    def test_half_duty(self):
        assert ook_signal_power(0.2 + 0j, duty=0.5) == \
            pytest.approx(0.02)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ook_signal_power(0.1, duty=0.0)
