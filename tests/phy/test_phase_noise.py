"""Tests for the LO phase-noise model and decoder robustness to it."""

import numpy as np
import pytest

from repro.analysis.throughput import match_streams
from repro.errors import ConfigurationError
from repro.phy.noise import apply_phase_noise, phase_noise_walk
from repro.types import IQTrace

from ..conftest import build_decoder, build_network


class TestPhaseNoiseWalk:
    def test_zero_rate_is_zero(self):
        np.testing.assert_array_equal(phase_noise_walk(100, 0.0),
                                      np.zeros(100))

    def test_variance_grows_linearly(self):
        """A Wiener process: Var[phi_n] ~ n * rate^2."""
        rate = 1e-3
        finals = [phase_noise_walk(10_000, rate, rng=s)[-1]
                  for s in range(200)]
        assert np.var(finals) == pytest.approx(10_000 * rate ** 2,
                                               rel=0.3)

    def test_apply_preserves_magnitude(self):
        signal = np.full(1000, 0.5 + 0.3j)
        rotated = apply_phase_noise(signal, 1e-3, rng=0)
        np.testing.assert_allclose(np.abs(rotated), np.abs(signal))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            phase_noise_walk(-1, 0.1)
        with pytest.raises(ConfigurationError):
            phase_noise_walk(10, -0.1)


class TestDecoderUnderPhaseNoise:
    def test_slow_lo_drift_tolerated(self, fast_profile):
        """The IQ differential cancels rotation common to both windows,
        so slow LO drift costs (almost) nothing."""
        sim = build_network(2, fast_profile, seed=55)
        capture = sim.run_epoch(0.01)
        rotated = IQTrace(
            samples=apply_phase_noise(capture.trace.samples,
                                      rate_rad=2e-5, rng=1),
            sample_rate_hz=capture.trace.sample_rate_hz)
        decoder = build_decoder(fast_profile)
        result = decoder.decode_epoch(rotated)
        matches = match_streams(capture, result)
        assert all(m.matched for m in matches)
        errors = sum(m.bit_errors for m in matches)
        sent = sum(m.bits_sent for m in matches)
        assert errors / sent < 0.05

    def test_fast_lo_drift_degrades(self, fast_profile):
        """Violent phase noise eventually breaks the cluster geometry —
        the model responds in the right direction."""
        sim = build_network(2, fast_profile, seed=56)
        capture = sim.run_epoch(0.01)
        decoder = build_decoder(fast_profile)

        def score(rate):
            trace = IQTrace(
                samples=apply_phase_noise(capture.trace.samples,
                                          rate_rad=rate, rng=2),
                sample_rate_hz=capture.trace.sample_rate_hz)
            matches = match_streams(capture,
                                    decoder.decode_epoch(trace))
            sent = sum(m.bits_sent for m in matches)
            return sum(m.bits_correct for m in matches) / sent

        assert score(2e-5) >= score(5e-3)
