"""Property tests for the multi-fidelity fast paths.

Every fast path in the fidelity ladder carries an equivalence claim:
the bound-based Lloyd iteration follows the brute-force trajectory
bit-for-bit, the banded Viterbi only answers when the thresholded path
is provably optimal, and a decoder with every gate forced off
reproduces the pre-policy pipeline exactly.  These tests check the
claims directly rather than trusting the derivations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import kmeans, kmeans_bounded
from repro.core.fidelity import FidelityPolicy
from repro.core.pipeline import LFDecoder, LFDecoderConfig
from repro.core.viterbi import RISE, ViterbiDecoder
from repro.phy.channel import ChannelModel, random_coefficients
from repro.reader.simulator import NetworkSimulator
from repro.tags.lf_tag import LFTag
from repro.types import SimulationProfile, TagConfig


def _blobs(seed, n_points, k, spread):
    gen = np.random.default_rng(seed)
    centres = gen.normal(size=k) + 1j * gen.normal(size=k)
    labels = gen.integers(0, k, size=n_points)
    noise = spread * (gen.normal(size=n_points)
                      + 1j * gen.normal(size=n_points))
    return centres[labels] + noise, centres


class TestBoundedLloydEquivalence:
    @given(seed=st.integers(0, 2 ** 31 - 1),
           n_points=st.integers(30, 400),
           k=st.integers(1, 9),
           spread=st.floats(0.01, 0.8))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_warm_restart(self, seed, n_points, k,
                                            spread):
        """Hamerly-bounded Lloyd == brute-force Lloyd from the same
        warm start: identical labels, centroids and inertia."""
        pts, centres = _blobs(seed, n_points, k, spread)
        # Perturbed true centres stand in for a previous epoch's fit.
        warm = centres + 0.05 * np.exp(1j * np.arange(k))
        reference = kmeans(pts, k, init_centroids=warm,
                           bounded_min_points=10 ** 9)
        bounded = kmeans_bounded(pts, k, warm)
        np.testing.assert_array_equal(bounded.labels, reference.labels)
        np.testing.assert_array_equal(bounded.centroids,
                                      reference.centroids)
        assert bounded.inertia == reference.inertia

    def test_kmeans_dispatches_to_bounded_above_threshold(self):
        pts, centres = _blobs(7, 2000, 3, 0.1)
        via_kmeans = kmeans(pts, 3, init_centroids=centres,
                            bounded_min_points=1024)
        direct = kmeans_bounded(pts, 3, np.asarray(centres))
        np.testing.assert_array_equal(via_kmeans.labels, direct.labels)
        np.testing.assert_array_equal(via_kmeans.centroids,
                                      direct.centroids)


class TestBandedViterbiEquivalence:
    @given(seed=st.integers(0, 2 ** 31 - 1),
           n_slots=st.integers(1, 80),
           sigma=st.floats(0.02, 0.45),
           pinned=st.booleans())
    @settings(max_examples=150, deadline=None)
    def test_matches_exact_decoder(self, seed, n_slots, sigma, pinned):
        """The banded decoder (with its exact fallback) returns the
        same state path as the always-exact decoder on arbitrary
        observation noise."""
        gen = np.random.default_rng(seed)
        ideal = gen.choice([-1.0, 0.0, 1.0], size=n_slots)
        obs = ideal + sigma * gen.normal(size=n_slots)
        initial = RISE if pinned else None
        exact = ViterbiDecoder(sigma=sigma, banded=False)
        banded = ViterbiDecoder(sigma=sigma, banded=True)
        np.testing.assert_array_equal(
            banded.decode_states(obs, initial_state=initial),
            exact.decode_states(obs, initial_state=initial))


@pytest.fixture(scope="module")
def six_tag_capture():
    profile = SimulationProfile.fast()
    gen = np.random.default_rng(11)
    coeffs = random_coefficients(6, rng=gen)
    channel = ChannelModel({k: coeffs[k] for k in range(6)},
                           environment_offset=0.5 + 0.3j)
    tags = [LFTag(TagConfig(tag_id=k, bitrate_bps=10e3,
                            channel_coefficient=coeffs[k]),
                  profile=profile,
                  rng=np.random.default_rng(gen.integers(0, 2 ** 63)))
            for k in range(6)]
    sim = NetworkSimulator(tags, channel, profile=profile,
                           noise_std=0.01, rng=gen)
    return profile, sim.run_epoch(0.008)


def _decode_streams(profile, capture, policy):
    decoder = LFDecoder(LFDecoderConfig(candidate_bitrates_bps=[10e3],
                                        profile=profile,
                                        fidelity=policy), rng=1)
    result = decoder.decode_epoch(capture.trace)
    return sorted(result.streams,
                  key=lambda s: (s.offset_samples, s.period_samples))


class TestForceFullReproducesLegacy:
    def test_force_full_bit_identical_to_disabled(self, six_tag_capture):
        """``force_full=True`` and ``enabled=False`` must run the same
        code paths and consume the same RNG stream: every decoded
        stream matches bit-for-bit, including alignment metadata."""
        profile, capture = six_tag_capture
        full = _decode_streams(profile, capture,
                               FidelityPolicy(force_full=True))
        legacy = _decode_streams(profile, capture,
                                 FidelityPolicy(enabled=False))
        assert len(full) == len(legacy)
        for a, b in zip(full, legacy):
            np.testing.assert_array_equal(a.bits, b.bits)
            assert a.offset_samples == b.offset_samples
            assert a.period_samples == b.period_samples
            assert a.collided == b.collided

    def test_force_full_reports_no_fast_path_hits(self, six_tag_capture):
        profile, capture = six_tag_capture
        decoder = LFDecoder(LFDecoderConfig(
            candidate_bitrates_bps=[10e3], profile=profile,
            fidelity=FidelityPolicy.full()), rng=1)
        result = decoder.decode_epoch(capture.trace)
        stats = result.fidelity_stats
        assert stats["pregate_fast"] == 0
        assert stats["subsample_fast"] == 0
        assert stats["multilevel_fast"] == 0
        assert stats["viterbi_banded"] == 0

    def test_adaptive_recovers_every_truth_the_full_decoder_does(
            self, six_tag_capture):
        """The adaptive ladder reorders internal RNG draws, so spurious
        ghost streams may differ — but every ground-truth payload the
        full decoder recovers error-free must also come back error-free
        from the adaptive decoder."""
        profile, capture = six_tag_capture
        full = _decode_streams(profile, capture, FidelityPolicy.full())
        adaptive = _decode_streams(profile, capture, FidelityPolicy())

        def best_ber(streams, truth_bits):
            tb = np.asarray(truth_bits, dtype=np.int8)
            best = 1.0
            for s in streams:
                sb = np.asarray(s.bits, dtype=np.int8)
                n = min(sb.size, tb.size)
                if n == 0:
                    continue
                direct = np.count_nonzero(sb[:n] != tb[:n]) / n
                flipped = np.count_nonzero((1 - sb[:n]) != tb[:n]) / n
                best = min(best, direct, flipped)
            return best

        for truth in capture.truths:
            if best_ber(full, truth.bits) == 0.0:
                assert best_ber(adaptive, truth.bits) == 0.0, \
                    f"tag {truth.tag_id} lost by the adaptive ladder"
