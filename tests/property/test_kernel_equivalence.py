"""Backend-equivalence properties of the kernel seam.

The kernel backends must be numerically interchangeable: the loop-form
bodies in ``repro.core.kernels._jit_impl`` (which numba compiles when
the ``[jit]`` extra is installed, and which run as plain Python here)
are fuzzed against the pure-numpy reference kernels on randomized
shapes, including empty and degenerate inputs.  Integer outputs —
labels, states, picks, differential gathers — must be exactly equal;
accumulated floats (inertias, match errors) may differ only by
summation order.

The struct-of-arrays packing contract is fuzzed too: pad lanes must
never perturb live-lane results, and unpacking must return exactly the
per-row kernel output.

When numba *is* installed (the CI matrix job), the same properties run
against the compiled backend as well.
"""

import importlib.util
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.kernels as kernels_mod
from repro.core.kernels import (ENV_VAR, available_backends,
                                get_backend, resolve_backend)
from repro.core.kernels import _jit_impl as jit
from repro.core.kernels import reference as ref
from repro.core.kernels.soa import SoABatch, length_class, pack_ragged
from repro.errors import ConfigurationError

HAVE_NUMBA = importlib.util.find_spec("numba") is not None

seeds = st.integers(min_value=0, max_value=2 ** 32 - 1)


def _random_windows(rng, n_samples, n_pos):
    """Valid (lo_b, hi_b, lo_a, hi_a) window bounds over ``n_samples``."""
    lo_b = rng.integers(0, n_samples, size=n_pos)
    hi_b = lo_b + rng.integers(1, 5, size=n_pos)
    hi_b = np.minimum(hi_b, n_samples)
    lo_b = np.minimum(lo_b, hi_b - 1)
    lo_a = rng.integers(0, n_samples, size=n_pos)
    hi_a = lo_a + rng.integers(1, 5, size=n_pos)
    hi_a = np.minimum(hi_a, n_samples)
    lo_a = np.minimum(lo_a, hi_a - 1)
    return lo_b, hi_b, lo_a, hi_a


def _prefix_sum(rng, n_samples):
    samples = (rng.standard_normal(n_samples)
               + 1j * rng.standard_normal(n_samples))
    return np.concatenate([[0], np.cumsum(samples)])


# -- per-kernel equivalence: loop bodies vs reference --------------------


@settings(max_examples=40, deadline=None)
@given(seed=seeds, n=st.integers(5, 60), k=st.integers(1, 5),
       restarts=st.integers(1, 4))
def test_lloyd_batched_matches_reference(seed, n, k, restarts):
    rng = np.random.default_rng(seed)
    pts = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    cents = (rng.standard_normal((restarts, k))
             + 1j * rng.standard_normal((restarts, k)))
    c_ref, l_ref, i_ref = ref.lloyd_batched(pts, cents.copy())
    c_jit, l_jit, i_jit = jit.lloyd_batched(pts, cents.copy(), 100,
                                            1e-10)
    np.testing.assert_array_equal(l_ref, l_jit)
    np.testing.assert_allclose(c_ref, c_jit, rtol=1e-9, atol=1e-12)
    assert np.isclose(i_ref, i_jit, rtol=1e-9, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(seed=seeds, n=st.integers(5, 60), k=st.integers(1, 5))
def test_bounded_lloyd_matches_reference(seed, n, k):
    rng = np.random.default_rng(seed)
    pts = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    cents = rng.standard_normal(k) + 1j * rng.standard_normal(k)
    c_ref, l_ref, i_ref = ref.bounded_lloyd(pts, cents.copy())
    c_jit, l_jit, i_jit = jit.bounded_lloyd(pts, cents.copy(), 100,
                                            1e-10)
    np.testing.assert_array_equal(l_ref, l_jit)
    np.testing.assert_allclose(c_ref, c_jit, rtol=1e-9, atol=1e-12)
    assert np.isclose(i_ref, i_jit, rtol=1e-9, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(seed=seeds, n=st.integers(5, 60), k=st.integers(1, 5))
def test_bounded_lloyd_matches_single_restart_batch(seed, n, k):
    """The Hamerly-bounded iteration is pruning only: its fit is
    bit-identical to a one-restart brute-force Lloyd."""
    rng = np.random.default_rng(seed)
    pts = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    cents = rng.standard_normal(k) + 1j * rng.standard_normal(k)
    c_b, l_b, i_b = ref.bounded_lloyd(pts, cents.copy())
    c_f, l_f, i_f = ref.lloyd_batched(pts, cents.copy()[None, :])
    np.testing.assert_array_equal(l_b, l_f)
    np.testing.assert_array_equal(c_b, c_f)
    assert i_b == i_f


@settings(max_examples=40, deadline=None)
@given(seed=seeds, n=st.integers(1, 12), n_lat=st.integers(1, 6),
       m=st.integers(1, 12))
def test_lattice_match_errors_match_reference(seed, n, n_lat, m):
    """Including the m > n overflow, which both fill with inf."""
    rng = np.random.default_rng(seed)
    cents = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    lattices = (rng.standard_normal((n_lat, m))
                + 1j * rng.standard_normal((n_lat, m)))
    e_ref = ref.lattice_match_errors(cents, lattices)
    e_jit = jit.lattice_match_errors(cents, lattices)
    np.testing.assert_allclose(e_ref, e_jit, rtol=1e-9, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(seed=seeds, n_samples=st.integers(2, 200),
       n_pos=st.integers(0, 50))
def test_edge_differentials_match_reference(seed, n_samples, n_pos):
    """The gather is elementwise, so the loop form is bit-identical —
    including the empty-stream case (zero positions)."""
    rng = np.random.default_rng(seed)
    csum = _prefix_sum(rng, n_samples)
    lo_b, hi_b, lo_a, hi_a = _random_windows(rng, n_samples, n_pos)
    d_ref = ref.edge_differentials(csum, lo_b, hi_b, lo_a, hi_a)
    d_jit = jit.edge_differentials(csum, lo_b, hi_b, lo_a, hi_a)
    np.testing.assert_array_equal(d_ref, d_jit)


@settings(max_examples=40, deadline=None)
@given(seed=seeds, n=st.integers(1, 80),
       initial=st.sampled_from([-1, 0, 1, 2, 3]),
       sigma=st.floats(0.05, 1.5))
def test_viterbi_exact_matches_reference(seed, n, initial, sigma):
    rng = np.random.default_rng(seed)
    obs = rng.standard_normal(n) * 0.7
    log_flip = float(np.log(0.3))
    log_hold = float(np.log(0.7))
    s_ref = ref.viterbi_exact(obs, sigma, log_flip, log_hold, initial)
    s_jit = jit.viterbi_exact(obs, sigma, log_flip, log_hold, initial)
    np.testing.assert_array_equal(s_ref, s_jit)


@settings(max_examples=40, deadline=None)
@given(seed=seeds, n=st.integers(1, 80), band=st.floats(0.0, 0.4),
       start_high=st.booleans(),
       required_first=st.sampled_from([-1, 0, 1, 2, 3]))
def test_viterbi_banded_matches_reference(seed, n, band, start_high,
                                          required_first):
    """The loop form returns (ok, states); reference returns None when
    the certificate fails.  Both must agree on certification and, when
    certified, on the exact state path."""
    rng = np.random.default_rng(seed)
    # Mix clean (near-lattice) and noisy observations so both the
    # certified and the uncertifiable branches are exercised.
    clean = rng.integers(-1, 2, size=n).astype(np.float64)
    noise = rng.standard_normal(n) * rng.choice([0.02, 0.6])
    obs = clean + noise
    s_ref = ref.viterbi_banded(obs, band, start_high, required_first)
    ok, s_jit = jit.viterbi_banded(obs, band, start_high,
                                   required_first)
    assert ok == (s_ref is not None)
    if ok:
        np.testing.assert_array_equal(s_ref, s_jit)


# -- struct-of-arrays packing --------------------------------------------


@settings(max_examples=40, deadline=None)
@given(seed=seeds, n_rows=st.integers(0, 12),
       n_samples=st.integers(4, 120))
def test_soa_pad_lanes_do_not_perturb(seed, n_rows, n_samples):
    """Batched gathers over padded rows equal per-row gathers exactly.

    Rows are ragged (including empty rows, which must be dropped); pad
    lanes carry the trivial [0, 1) window and are sliced away on
    unpack, so every unpacked row must be bit-identical to calling the
    kernel on that row alone.
    """
    rng = np.random.default_rng(seed)
    csum = _prefix_sum(rng, n_samples)
    rows = []
    for _ in range(n_rows):
        n_pos = int(rng.integers(0, 9))
        rows.append(_random_windows(rng, n_samples, n_pos))
    batches = pack_ragged(rows, pad_values=(0, 1, 0, 1))

    seen = set()
    for batch in batches:
        flat = ref.edge_differentials(
            csum, *(col.ravel() for col in batch.columns))
        for r, diffs in batch.unpack(flat):
            direct = ref.edge_differentials(csum, *rows[r])
            np.testing.assert_array_equal(diffs, direct)
            seen.add(r)
    expected = {r for r, cols in enumerate(rows) if cols[0].size > 0}
    assert seen == expected


@settings(max_examples=40, deadline=None)
@given(seed=seeds, n_rows=st.integers(1, 12))
def test_soa_packing_shape_invariants(seed, n_rows):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n_rows):
        n_pos = int(rng.integers(1, 20))
        a = rng.integers(0, 100, size=n_pos)
        rows.append((a, a + 1, a + 2, a + 3))
    batches = pack_ragged(rows, pad_values=(0, 1, 0, 1))
    widths = [b.width for b in batches]
    assert widths == sorted(widths)
    for batch in batches:
        assert batch.width == length_class(int(batch.lengths.max()))
        for col in batch.columns:
            assert col.shape == (len(batch.rows), batch.width)
        # mask marks exactly the live lanes
        np.testing.assert_array_equal(
            batch.mask.sum(axis=1), batch.lengths)
        # live lanes hold the original data
        for i, r in enumerate(batch.rows):
            for c in range(4):
                np.testing.assert_array_equal(
                    batch.columns[c][i, :int(batch.lengths[i])],
                    rows[r][c])


def test_length_class_is_next_pow2():
    assert [length_class(n) for n in (1, 2, 3, 4, 5, 8, 9, 1000)] \
        == [1, 2, 4, 4, 8, 8, 16, 1024]


# -- backend selection and fallback --------------------------------------


def test_reference_backend_always_available():
    assert "reference" in available_backends()
    backend = resolve_backend("reference")
    assert backend.name == "reference"
    backend.warm_up()  # no-op, must not raise


def test_explicit_name_overrides_environment(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "definitely-not-a-backend")
    # The explicit name wins; the bogus environment value is not read.
    assert resolve_backend("reference").name == "reference"


def test_environment_variable_selects_backend(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "reference")
    assert get_backend().name == "reference"


def test_unknown_backend_name_raises(monkeypatch):
    with pytest.raises(ConfigurationError):
        resolve_backend("turbojet")
    monkeypatch.setenv(ENV_VAR, "turbojet")
    with pytest.raises(ConfigurationError):
        resolve_backend(None)


def test_auto_resolves_silently():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        backend = resolve_backend("auto")
    assert backend.name in ("reference", "numba")


@pytest.mark.skipif(HAVE_NUMBA, reason="numba installed — fallback "
                                       "path unreachable")
def test_missing_numba_warns_once_and_falls_back(monkeypatch):
    monkeypatch.setattr(kernels_mod, "_warned_numba_missing", False)
    with pytest.warns(RuntimeWarning, match="numba is not installed"):
        backend = resolve_backend("numba")
    assert backend.name == "reference"
    # Second request: already warned, degrades silently.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_backend("numba").name == "reference"


# -- compiled backend (CI matrix job only) -------------------------------


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestCompiledBackend:
    """The njit-compiled kernels obey the same equivalence contract."""

    @pytest.fixture(scope="class")
    def numba_backend(self):
        backend = resolve_backend("numba")
        assert backend.name == "numba"
        return backend

    def test_compiled_lloyd(self, numba_backend):
        rng = np.random.default_rng(7)
        pts = rng.standard_normal(50) + 1j * rng.standard_normal(50)
        cents = (rng.standard_normal((3, 4))
                 + 1j * rng.standard_normal((3, 4)))
        c_ref, l_ref, i_ref = ref.lloyd_batched(pts, cents.copy())
        c_nb, l_nb, i_nb = numba_backend.lloyd_batched(pts,
                                                       cents.copy())
        np.testing.assert_array_equal(l_ref, l_nb)
        np.testing.assert_allclose(c_ref, c_nb, rtol=1e-9)
        assert np.isclose(i_ref, i_nb, rtol=1e-9)

    def test_compiled_edge_differentials(self, numba_backend):
        rng = np.random.default_rng(11)
        csum = _prefix_sum(rng, 100)
        bounds = _random_windows(rng, 100, 30)
        np.testing.assert_array_equal(
            ref.edge_differentials(csum, *bounds),
            numba_backend.edge_differentials(csum, *bounds))

    def test_compiled_viterbi(self, numba_backend):
        rng = np.random.default_rng(13)
        obs = rng.standard_normal(60) * 0.7
        lf, lh = float(np.log(0.3)), float(np.log(0.7))
        np.testing.assert_array_equal(
            ref.viterbi_exact(obs, 0.3, lf, lh, -1),
            numba_backend.viterbi_exact(obs, 0.3, lf, lh, -1))
