"""Additional hypothesis property tests across the stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.collision_prob import collision_probability
from repro.core.folding import fold_histogram
from repro.hardware.gates import Gate, transistor_count
from repro.link.reliability import append_crc16, check_crc16
from repro.phy.capacitor import CapacitorModel
from repro.phy.modulation import nrz_waveform
from repro.utils.dsp import windowed_means


@given(n_tags=st.integers(2, 64),
       positions=st.floats(50, 5000),
       window=st.floats(1.0, 10.0))
@settings(max_examples=50)
def test_collision_probabilities_sum_to_one(n_tags, positions, window):
    if window >= positions:
        return
    total = sum(collision_probability(n_tags, k,
                                      n_positions=positions,
                                      window=window)
                for k in range(1, n_tags + 1))
    assert abs(total - 1.0) < 1e-9


@given(n_tags=st.integers(3, 40))
@settings(max_examples=30)
def test_collision_probability_monotone_in_window(n_tags):
    narrow = collision_probability(n_tags, 1, n_positions=250,
                                   window=2.0)
    wide = collision_probability(n_tags, 1, n_positions=250,
                                 window=8.0)
    # Wider collision windows make "no collision" less likely.
    assert wide <= narrow + 1e-12


@given(positions=st.lists(st.floats(0, 100_000, allow_nan=False),
                          min_size=1, max_size=300),
       period=st.floats(10.0, 5000.0),
       bin_width=st.floats(1.0, 10.0))
@settings(max_examples=50)
def test_fold_histogram_conserves_count(positions, period, bin_width):
    counts, _ = fold_histogram(np.asarray(positions), period,
                               bin_width)
    assert counts.sum() == len(positions)
    assert counts.min() >= 0


@given(msg=st.lists(st.integers(0, 1), min_size=1, max_size=200),
       start=st.integers(0, 180),
       burst=st.integers(1, 16))
@settings(max_examples=60)
def test_crc16_detects_bursts_within_width(msg, start, burst):
    frame = append_crc16(np.asarray(msg, dtype=np.int8))
    assert check_crc16(frame)
    lo = start % frame.size
    hi = min(lo + burst, frame.size)
    bad = frame.copy()
    bad[lo:hi] ^= 1
    assert not check_crc16(bad)


@given(threshold=st.floats(0.05, 1.7),
       energy=st.floats(0.8, 1.3),
       tau=st.floats(0.5, 2.0))
@settings(max_examples=60)
def test_capacitor_crossing_is_consistent(threshold, energy, tau):
    cap = CapacitorModel()
    if threshold >= energy * cap.v_max:
        return  # unreachable threshold
    t = cap.crossing_time(threshold, energy_scale=energy,
                          tau_scale=tau)
    assert t > 0
    v = cap.voltage(np.array([t]), energy_scale=energy,
                    tau_scale=tau)[0]
    assert abs(v - threshold) < 1e-9


@given(counts=st.dictionaries(st.sampled_from(list(Gate)),
                              st.integers(0, 50), max_size=6))
@settings(max_examples=50)
def test_transistor_count_additive(counts):
    total = transistor_count(counts)
    split_a = {g: c // 2 for g, c in counts.items()}
    split_b = {g: c - c // 2 for g, c in counts.items()}
    assert transistor_count(split_a) + transistor_count(split_b) \
        == total


@given(bits=st.lists(st.integers(0, 1), min_size=1, max_size=30),
       offset=st.floats(5.0, 60.0))
@settings(max_examples=40)
def test_waveform_area_matches_bit_sum(bits, offset):
    """The integral of the waveform equals ones x period (ramps are
    symmetric, the tail holds the final level)."""
    period = 20.0
    arr = np.asarray(bits, dtype=np.int8)
    n = int(offset + period * (len(bits))) + 1
    wave = nrz_waveform(arr, offset, period, n,
                        edge_width_samples=3, final_state=0)
    expected = float(arr.sum()) * period
    assert abs(wave.sum() - expected) < 3.0  # ramp quantization slack


@given(data=st.data())
@settings(max_examples=40)
def test_windowed_means_linear(data):
    """Windowed means are linear in the signal."""
    n = data.draw(st.integers(30, 200), label="n")
    rng = np.random.default_rng(data.draw(st.integers(0, 10 ** 6)))
    a = rng.normal(size=n)
    b = rng.normal(size=n)
    centers = np.array([n // 2])
    ba, aa = windowed_means(a, centers, 5, 5, 1)
    bb, ab = windowed_means(b, centers, 5, 5, 1)
    bsum, asum = windowed_means(a + b, centers, 5, 5, 1)
    assert abs(bsum[0] - (ba[0] + bb[0])) < 1e-9
    assert abs(asum[0] - (aa[0] + ab[0])) < 1e-9
