"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.latency import append_crc5, check_crc5
from repro.core.separation import continuous_coords
from repro.core.viterbi import (ViterbiDecoder, bits_to_edge_states,
                                edge_states_to_bits,
                                is_valid_state_sequence)
from repro.phy.modulation import nrz_waveform, toggle_positions
from repro.tags.base import build_frame, frame_payload
from repro.utils.dsp import moving_average
from repro.utils.stats import ber_from_bits

bit_lists = st.lists(st.integers(0, 1), min_size=1, max_size=120)


@given(bits=bit_lists)
def test_frame_round_trip(bits):
    payload = np.asarray(bits, dtype=np.int8)
    recovered = frame_payload(build_frame(payload))
    np.testing.assert_array_equal(recovered, payload)


@given(bits=bit_lists)
def test_edge_state_round_trip(bits):
    arr = np.asarray(bits, dtype=np.int8)
    states = bits_to_edge_states(arr)
    assert is_valid_state_sequence(states)
    np.testing.assert_array_equal(edge_states_to_bits(states), arr)


@given(bits=bit_lists)
def test_toggle_count_matches_bit_flips(bits):
    """Number of NRZ toggles equals the number of level changes
    including the initial 0 -> bits[0] transition."""
    arr = np.asarray(bits, dtype=np.int8)
    toggles = toggle_positions(arr, offset_samples=0.0,
                               period_samples=10.0)
    levels = np.concatenate([[0], arr])
    expected = int(np.count_nonzero(np.diff(levels)))
    assert toggles.size == expected


@given(bits=st.lists(st.integers(0, 1), min_size=1, max_size=40))
@settings(max_examples=30)
def test_waveform_levels_bounded_and_consistent(bits):
    arr = np.asarray(bits, dtype=np.int8)
    wave = nrz_waveform(arr, offset_samples=20.0, period_samples=25.0,
                        n_samples=int(20 + 25 * (len(bits) + 2)),
                        edge_width_samples=3)
    assert wave.min() >= 0.0
    assert wave.max() <= 1.0
    # Mid-bit samples equal the bit value exactly.
    for k, bit in enumerate(arr):
        mid = int(20 + 25 * k + 12)
        assert wave[mid] == float(bit)


@given(bits=bit_lists)
@settings(max_examples=40)
def test_viterbi_noiseless_identity(bits):
    """With ideal observations the Viterbi decode is exact."""
    arr = np.asarray(bits, dtype=np.int8)
    states = bits_to_edge_states(arr)
    obs = np.array([1.0, -1.0, 0.0, 0.0])[states]
    decoded = ViterbiDecoder().decode_bits(obs)
    np.testing.assert_array_equal(decoded, arr)


@given(obs=st.lists(st.floats(-3, 3, allow_nan=False), min_size=1,
                    max_size=80))
@settings(max_examples=40)
def test_viterbi_output_always_valid(obs):
    """Whatever garbage comes in, the state path obeys the trellis."""
    states = ViterbiDecoder().decode_states(np.asarray(obs))
    assert is_valid_state_sequence(states)


@given(st.data())
@settings(max_examples=40)
def test_lattice_coords_inversion(data):
    """continuous_coords inverts a*e1 + b*e2 exactly for any
    non-degenerate basis."""
    def vec(label):
        mag = data.draw(st.floats(0.02, 0.5), label=label + "_mag")
        ang = data.draw(st.floats(0, 2 * np.pi), label=label + "_ang")
        return mag * complex(np.cos(ang), np.sin(ang))

    e1, e2 = vec("e1"), vec("e2")
    cross = abs(e1.real * e2.imag - e1.imag * e2.real)
    if cross < 0.2 * abs(e1) * abs(e2):
        return  # skip near-degenerate geometry
    a = np.array(data.draw(st.lists(st.integers(-1, 1), min_size=3,
                                    max_size=20), label="a"))
    b = np.array(data.draw(st.lists(st.integers(-1, 1),
                                    min_size=len(a), max_size=len(a)),
                           label="b"))
    d = a * e1 + b * e2
    coords = continuous_coords(d, e1, e2)
    np.testing.assert_allclose(coords[:, 0], a, atol=1e-8)
    np.testing.assert_allclose(coords[:, 1], b, atol=1e-8)


@given(msg=st.lists(st.integers(0, 1), min_size=1, max_size=120),
       pos=st.integers(0, 200))
@settings(max_examples=60)
def test_crc5_detects_any_single_bit_flip(msg, pos):
    frame = append_crc5(np.asarray(msg, dtype=np.int8))
    assert check_crc5(frame)
    bad = frame.copy()
    bad[pos % frame.size] ^= 1
    assert not check_crc5(bad)


@given(x=st.lists(st.floats(-100, 100, allow_nan=False), min_size=1,
                  max_size=200),
       window=st.integers(1, 20))
@settings(max_examples=50)
def test_moving_average_bounded_by_extremes(x, window):
    arr = np.asarray(x)
    smoothed = moving_average(arr, window)
    assert smoothed.shape == arr.shape
    assert smoothed.min() >= arr.min() - 1e-9
    assert smoothed.max() <= arr.max() + 1e-9


@given(sent=bit_lists)
def test_ber_identity_and_bounds(sent):
    arr = np.asarray(sent, dtype=np.int8)
    assert ber_from_bits(arr, arr) == 0.0
    flipped = 1 - arr
    assert ber_from_bits(arr, flipped) == 1.0
    assert 0.0 <= ber_from_bits(arr, np.zeros_like(arr)) <= 1.0
