"""Numerical-equivalence properties of the vectorized hot paths.

The PR that vectorized the decoder's inner loops must not change any
numbers: each test here keeps a straight transcription of the original
loop-based implementation and checks the shipped vectorized version
against it on randomized inputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import constants
from repro.core.edges import EdgeDetector, EdgeDetectorConfig
from repro.core.folding import analog_fold_search
from repro.types import IQTrace, StreamHypothesis


# -- reference implementations (pre-vectorization transcriptions) --------


def _reference_refine(detector, trace, positions, bounds=None):
    """The original per-position loop of ``refine_differentials``."""
    cfg = detector.config
    s = trace.samples
    n = s.size
    pos = np.asarray(positions, dtype=np.int64)
    limits = np.sort(np.asarray(
        positions if bounds is None else bounds, dtype=np.int64))
    csum = np.concatenate([[0], np.cumsum(s)])
    guard = cfg.guard
    max_w = cfg.max_refine_window

    idx = np.searchsorted(limits, pos, side="left")
    prev_edge = np.where(idx > 0, limits[np.maximum(idx - 1, 0)], -1)
    same = limits[np.minimum(idx, limits.size - 1)] == pos
    nxt = idx + same.astype(np.int64)
    next_edge = np.where(nxt < limits.size,
                         limits[np.minimum(nxt, limits.size - 1)], n)
    prev_edge = np.where(prev_edge >= pos, -1, prev_edge)
    next_edge = np.where(next_edge <= pos, n, next_edge)

    lo_b = np.clip(np.maximum(prev_edge + guard + 1,
                              pos - guard - max_w), 0, n)
    hi_b = np.clip(pos - guard, 0, n)
    lo_a = np.clip(pos + guard + 1, 0, n)
    hi_a = np.clip(np.minimum(next_edge - guard,
                              pos + guard + 1 + max_w), 0, n)

    out = np.empty(pos.size, dtype=np.complex128)
    for i in range(pos.size):
        lb, hb = lo_b[i], hi_b[i]
        la, ha = lo_a[i], hi_a[i]
        if hb <= lb:
            lb = max(pos[i] - guard - 1, 0)
            hb = max(pos[i] - guard, lb + 1)
        if ha <= la:
            ha = min(pos[i] + guard + 2, n)
            la = min(pos[i] + guard + 1, ha - 1)
        before = (csum[hb] - csum[lb]) / (hb - lb)
        after = (csum[ha] - csum[la]) / (ha - la)
        out[i] = after - before
    return out


def _reference_analog_fold(diff_energy, candidate_periods,
                           max_drift_ppm=250.0, n_drift_steps=9,
                           min_peak_ratio=2.0):
    """The original per-drift refold loop of ``analog_fold_search``."""
    energy = np.asarray(diff_energy, dtype=np.float64)
    hypotheses = []
    t = np.arange(energy.size, dtype=np.float64)
    drifts = np.linspace(-max_drift_ppm, max_drift_ppm,
                         n_drift_steps) * 1e-6
    for period in sorted(set(candidate_periods)):
        if energy.size < 4 * period:
            continue
        best = None
        for drift in drifts:
            p = period * (1.0 + drift)
            n_bins = int(round(p))
            bins = np.mod(t, p).astype(np.int64)
            np.minimum(bins, n_bins - 1, out=bins)
            folded = np.bincount(bins, weights=energy,
                                 minlength=n_bins)
            counts = np.maximum(np.bincount(bins, minlength=n_bins), 1)
            folded = folded / counts
            kernel = np.ones(constants.EDGE_WIDTH_SAMPLES) \
                / constants.EDGE_WIDTH_SAMPLES
            smooth = np.convolve(
                np.concatenate([folded[-2:], folded, folded[:2]]),
                kernel, mode="same")[2:-2]
            peak_bin = int(np.argmax(smooth))
            ratio = smooth[peak_bin] / max(float(np.median(smooth)),
                                           1e-30)
            if best is None or ratio > best[0]:
                best = (float(ratio), float(peak_bin), p)
        if best is None or best[0] < min_peak_ratio:
            continue
        hypotheses.append(StreamHypothesis(
            offset_samples=best[1], period_samples=best[2],
            score=best[0], edge_indices=[]))
    return hypotheses


# -- strategies ----------------------------------------------------------

trace_seeds = st.integers(0, 2 ** 31 - 1)


def _random_trace(seed, n):
    rng = np.random.default_rng(seed)
    # A few step transitions on top of noise, like a real capture.
    samples = (0.02 * (rng.standard_normal(n)
                       + 1j * rng.standard_normal(n))
               + (0.5 + 0.3j))
    for _ in range(rng.integers(1, 6)):
        at = int(rng.integers(0, n))
        samples[at:] += (rng.uniform(-0.2, 0.2)
                         + 1j * rng.uniform(-0.2, 0.2))
    return IQTrace(samples=samples, sample_rate_hz=1e6)


@settings(max_examples=40, deadline=None)
@given(seed=trace_seeds,
       n=st.integers(80, 400),
       n_pos=st.integers(1, 25),
       guard=st.integers(0, 6),
       max_w=st.integers(1, 60),
       use_bounds=st.booleans())
def test_refine_differentials_matches_reference(seed, n, n_pos, guard,
                                                max_w, use_bounds):
    trace = _random_trace(seed, n)
    rng = np.random.default_rng(seed + 1)
    positions = np.unique(rng.integers(0, n, n_pos))
    bounds = np.unique(rng.integers(0, n, 2 * n_pos)) \
        if use_bounds else None
    detector = EdgeDetector(EdgeDetectorConfig(
        guard=guard, max_refine_window=max_w))
    got = detector.refine_differentials(trace, positions, bounds=bounds)
    want = _reference_refine(detector, trace, positions, bounds=bounds)
    np.testing.assert_allclose(got, want, rtol=0.0, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(seed=trace_seeds,
       n=st.integers(200, 1500),
       period=st.floats(10.0, 80.0),
       n_drift_steps=st.integers(1, 9))
def test_analog_fold_search_matches_reference(seed, n, period,
                                              n_drift_steps):
    rng = np.random.default_rng(seed)
    energy = rng.random(n) ** 2
    # Inject a periodic spike train so some runs cross the peak-ratio
    # acceptance threshold and exercise the hypothesis-emitting path.
    spikes = np.arange(int(rng.uniform(0, period)), n,
                       int(round(period)))
    energy[spikes] += rng.uniform(0.0, 30.0)
    periods = [period, period * 2.0]
    got = analog_fold_search(energy, periods,
                             n_drift_steps=n_drift_steps)
    want = _reference_analog_fold(energy, periods,
                                  n_drift_steps=n_drift_steps)
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.offset_samples == w.offset_samples
        np.testing.assert_allclose(g.period_samples, w.period_samples,
                                   rtol=0.0, atol=1e-12)
        np.testing.assert_allclose(g.score, w.score,
                                   rtol=0.0, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(seed=trace_seeds, n=st.integers(100, 300))
def test_detect_unaffected_by_trace_cache(seed, n):
    """A cold decode and a cache-warm decode see identical edges."""
    trace = _random_trace(seed, n)
    detector = EdgeDetector()
    first = detector.detect(trace)
    second = detector.detect(trace)  # served from the trace cache
    assert [(e.position, e.differential) for e in first] \
        == [(e.position, e.differential) for e in second]
