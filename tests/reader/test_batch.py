"""Tests of reader-side batch decoding and trace chunking."""

import numpy as np
import pytest

from repro.core.pipeline import LFDecoder, LFDecoderConfig
from repro.errors import ConfigurationError
from repro.phy.channel import ChannelModel, random_coefficients
from repro.reader.batch import chunk_trace, decode_captures, \
    decode_chunked
from repro.reader.simulator import NetworkSimulator
from repro.tags.lf_tag import LFTag
from repro.types import IQTrace, SimulationProfile, TagConfig

PROFILE = SimulationProfile.fast()


def make_capture(seed, n_tags=3, duration_s=0.006):
    gen = np.random.default_rng(seed)
    coeffs = random_coefficients(n_tags, rng=gen)
    channel = ChannelModel({k: coeffs[k] for k in range(n_tags)},
                           environment_offset=0.5 + 0.3j)
    tags = [LFTag(TagConfig(tag_id=k, bitrate_bps=10e3,
                            channel_coefficient=coeffs[k]),
                  profile=PROFILE,
                  rng=np.random.default_rng(gen.integers(0, 2 ** 63)))
            for k in range(n_tags)]
    sim = NetworkSimulator(tags, channel, profile=PROFILE,
                           noise_std=0.01, rng=gen)
    return sim.run_epoch(duration_s)


@pytest.fixture(scope="module")
def config():
    return LFDecoderConfig(candidate_bitrates_bps=[10e3],
                           profile=PROFILE)


def test_decode_captures_ordered(config):
    captures = [make_capture(seed) for seed in (21, 22)]
    results = decode_captures(captures, config=config, seed=1,
                              max_workers=1)
    assert [r.epoch_index for r in results] == [0, 1]
    assert all(r.n_streams >= 1 for r in results)


def test_chunk_trace_covers_everything():
    trace = IQTrace(samples=np.arange(1000) + 0j, sample_rate_hz=1e6)
    chunks = chunk_trace(trace, 300)
    assert sum(len(c) for c in chunks) == len(trace)
    reassembled = np.concatenate([c.samples for c in chunks])
    np.testing.assert_array_equal(reassembled, trace.samples)
    # Timebase is preserved across chunk boundaries.
    for prev, nxt in zip(chunks, chunks[1:]):
        expected = prev.start_time_s + len(prev) / trace.sample_rate_hz
        assert nxt.start_time_s == pytest.approx(expected)


def test_chunk_trace_folds_short_tail():
    trace = IQTrace(samples=np.zeros(1010) + 0j, sample_rate_hz=1e6)
    chunks = chunk_trace(trace, 500)
    # The 10-sample tail is folded into the last chunk, not emitted.
    assert [len(c) for c in chunks] == [500, 510]


def test_chunk_trace_short_input_single_chunk():
    trace = IQTrace(samples=np.zeros(100) + 0j, sample_rate_hz=1e6)
    assert [len(c) for c in chunk_trace(trace, 500)] == [100]


def test_chunk_trace_rejects_bad_size():
    trace = IQTrace(samples=np.zeros(10) + 0j, sample_rate_hz=1e6)
    with pytest.raises(ConfigurationError):
        chunk_trace(trace, 0)


def test_decode_chunked_recovers_streams_with_global_offsets(config):
    capture = make_capture(23, duration_s=0.012)
    trace = capture.trace
    whole = LFDecoder(config, rng=1).decode_epoch(trace)
    merged = decode_chunked(trace, len(trace) // 2, config=config,
                            seed=1, max_workers=1)
    assert merged.n_streams >= 1
    # Chunk-local offsets were translated back to global coordinates:
    # every stream's phase (offset modulo its period) should line up
    # with a stream the whole-trace decode found.
    whole_phases = sorted(s.offset_samples % s.period_samples
                          for s in whole.streams)
    for stream in merged.streams:
        phase = stream.offset_samples % stream.period_samples
        assert any(min(abs(phase - w),
                       stream.period_samples - abs(phase - w)) < 10.0
                   for w in whole_phases)
    assert merged.stage_timings["total"] > 0.0


def test_decode_chunked_merges_health_and_faults(config):
    capture = make_capture(24, duration_s=0.012)
    samples = np.array(capture.trace.samples, copy=True)
    samples[100:120] = np.nan  # repairable gap in the first chunk
    trace = IQTrace(samples=samples,
                    sample_rate_hz=capture.trace.sample_rate_hz,
                    allow_nonfinite=True)
    merged = decode_chunked(trace, len(trace) // 2, config=config,
                            seed=1, max_workers=1)
    assert merged.trace_health is not None
    assert merged.trace_health.verdict == "degraded"
    assert merged.degraded
    assert merged.n_streams >= 1  # the capture still decodes
