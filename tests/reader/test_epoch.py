"""Tests for epoch capture records."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.reader.epoch import EpochCapture, TagTruth
from repro.types import IQTrace


def _truth(tag_id=0, n_bits=10):
    return TagTruth(tag_id=tag_id,
                    bits=np.ones(n_bits, dtype=np.int8),
                    offset_samples=100.0, period_samples=250.0,
                    nominal_bitrate_bps=10e3,
                    coefficient=0.1 + 0.05j)


def _capture(truths):
    trace = IQTrace(samples=np.ones(1000, dtype=complex),
                    sample_rate_hz=2.5e6)
    return EpochCapture(trace=trace, truths=truths)


def test_truth_lookup():
    cap = _capture([_truth(0), _truth(3)])
    assert cap.truth_for(3).tag_id == 3
    assert cap.truth_for(9) is None


def test_totals():
    cap = _capture([_truth(0, 10), _truth(1, 20)])
    assert cap.n_tags == 2
    assert cap.total_bits_sent() == 30


def test_duration_from_trace():
    cap = _capture([_truth()])
    assert cap.duration_s == pytest.approx(1000 / 2.5e6)


def test_truth_validation():
    with pytest.raises(ConfigurationError):
        TagTruth(tag_id=0, bits=np.ones(3, dtype=np.int8),
                 offset_samples=-1.0, period_samples=250.0,
                 nominal_bitrate_bps=10e3, coefficient=0.1)
    with pytest.raises(ConfigurationError):
        TagTruth(tag_id=0, bits=np.ones(3, dtype=np.int8),
                 offset_samples=0.0, period_samples=0.0,
                 nominal_bitrate_bps=10e3, coefficient=0.1)
