"""Tests for the reader front end."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SignalError
from repro.reader.frontend import ReaderFrontend


def test_noiseless_passthrough():
    fe = ReaderFrontend(sample_rate_hz=1e6)
    clean = np.full(100, 0.5 + 0.2j)
    trace = fe.capture(clean)
    np.testing.assert_array_equal(trace.samples, clean)
    assert trace.sample_rate_hz == 1e6


def test_noise_power_matches_config():
    fe = ReaderFrontend(sample_rate_hz=1e6, noise_std=0.1, rng=0)
    clean = np.zeros(200_000, dtype=complex)
    trace = fe.capture(clean)
    assert np.mean(np.abs(trace.samples) ** 2) == pytest.approx(
        0.01, rel=0.05)


def test_start_time_propagated():
    fe = ReaderFrontend(sample_rate_hz=1e3)
    trace = fe.capture(np.ones(10, dtype=complex), start_time_s=2.5)
    assert trace.start_time_s == 2.5


def test_quantization_grid():
    fe = ReaderFrontend(sample_rate_hz=1e6, adc_bits=4,
                        adc_full_scale=2.0)
    clean = np.linspace(-1, 1, 50) + 0j
    trace = fe.capture(clean)
    step = 2.0 / 16
    # Every output value sits on a mid-rise grid point.
    residues = np.mod(trace.samples.real - step / 2, step)
    ok = np.minimum(residues, step - residues)
    assert np.all(ok < 1e-12)


def test_quantization_error_bounded():
    fe = ReaderFrontend(sample_rate_hz=1e6, adc_bits=8,
                        adc_full_scale=2.0)
    rng = np.random.default_rng(0)
    clean = rng.uniform(-0.9, 0.9, 500) + 1j * rng.uniform(-0.9, 0.9,
                                                           500)
    trace = fe.capture(clean)
    step = 2.0 / 256
    assert np.max(np.abs(trace.samples.real - clean.real)) <= step
    assert np.max(np.abs(trace.samples.imag - clean.imag)) <= step


def test_validation():
    with pytest.raises(ConfigurationError):
        ReaderFrontend(sample_rate_hz=0.0)
    with pytest.raises(ConfigurationError):
        ReaderFrontend(sample_rate_hz=1.0, noise_std=-1.0)
    with pytest.raises(ConfigurationError):
        ReaderFrontend(sample_rate_hz=1.0, adc_bits=1)
    fe = ReaderFrontend(sample_rate_hz=1.0)
    # Malformed signal arrays are signal-path errors, matching IQTrace.
    with pytest.raises(SignalError):
        fe.capture(np.empty(0, dtype=complex))
    with pytest.raises(SignalError):
        fe.capture(np.ones((2, 2)))
