"""Tests for the network simulator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.channel import ChannelModel
from repro.phy.dynamics import people_movement
from repro.tags.base import FixedOffsetModel, FixedPayload
from repro.tags.lf_tag import LFTag
from repro.reader.simulator import NetworkSimulator
from repro.types import SimulationProfile, TagConfig

PROFILE = SimulationProfile.fast()


def make_sim(coeffs, noise_std=0.0, snr_db=None, rng=0, **tag_kwargs):
    channel = ChannelModel({k: c for k, c in enumerate(coeffs)},
                           environment_offset=0.5 + 0.3j)
    tags = [LFTag(TagConfig(tag_id=k, bitrate_bps=10e3,
                            channel_coefficient=c),
                  profile=PROFILE, rng=k, **tag_kwargs)
            for k, c in enumerate(coeffs)]
    if snr_db is not None and noise_std == 0.0:
        noise_std = None  # the two modes are mutually exclusive
    return NetworkSimulator(tags, channel, profile=PROFILE,
                            noise_std=noise_std, snr_db=snr_db,
                            rng=rng)


class TestRunEpoch:
    def test_trace_shape(self):
        sim = make_sim([0.1 + 0.05j])
        cap = sim.run_epoch(0.01)
        assert len(cap.trace) == 25_000
        assert cap.trace.sample_rate_hz == 2.5e6

    def test_truth_records_complete(self):
        sim = make_sim([0.1 + 0.05j, 0.08 - 0.1j])
        cap = sim.run_epoch(0.01)
        assert cap.n_tags == 2
        for truth in cap.truths:
            assert truth.n_bits > 9
            assert truth.offset_samples >= 0
            assert truth.period_samples == pytest.approx(250, rel=1e-3)

    def test_signal_levels_match_channel(self):
        """Noiseless trace values are sums of environment + active
        coefficients (Equation 1)."""
        coeff = 0.1 + 0.05j
        sim = make_sim([coeff],
                       offset_model=FixedOffsetModel(1e-3),
                       payload_source=FixedPayload([1, 1, 1, 1]))
        cap = sim.run_epoch(0.01)
        env = 0.5 + 0.3j
        values = set(np.round(cap.trace.samples, 6))
        assert np.round(env, 6) in values          # antenna off
        assert np.round(env + coeff, 6) in values  # antenna reflecting

    def test_epoch_index_sets_start_time(self):
        sim = make_sim([0.1])
        cap = sim.run_epoch(0.01, epoch_index=3)
        assert cap.trace.start_time_s == pytest.approx(0.03)

    def test_run_epochs(self):
        sim = make_sim([0.1])
        captures = sim.run_epochs(3, 0.01)
        assert [c.epoch_index for c in captures] == [0, 1, 2]

    def test_snr_mode_sets_noise(self):
        sim = make_sim([0.1 + 0j], snr_db=20.0)
        # SNR 20 dB over |h|^2 = 0.01 -> noise power 1e-4.
        assert sim.noise_std == pytest.approx(0.01, rel=1e-6)


class TestDynamicChannel:
    def test_time_varying_coefficient_used(self):
        base = 0.1 + 0.05j
        channel = ChannelModel(
            {0: base},
            trajectories={0: people_movement(base, 1.0, rng=0)})
        tag = LFTag(TagConfig(tag_id=0, bitrate_bps=10e3,
                              channel_coefficient=base),
                    profile=PROFILE, rng=0)
        sim = NetworkSimulator([tag], channel, profile=PROFILE, rng=1)
        cap = sim.run_epoch(0.01)
        assert len(cap.trace) == 25_000


class TestValidation:
    def test_duplicate_tag_ids(self):
        channel = ChannelModel({0: 0.1})
        tags = [LFTag(TagConfig(tag_id=0, bitrate_bps=10e3,
                                channel_coefficient=0.1),
                      profile=PROFILE, rng=s) for s in range(2)]
        with pytest.raises(ConfigurationError):
            NetworkSimulator(tags, channel, profile=PROFILE)

    def test_missing_coefficient(self):
        channel = ChannelModel({0: 0.1})
        tags = [LFTag(TagConfig(tag_id=5, bitrate_bps=10e3,
                                channel_coefficient=0.1),
                      profile=PROFILE, rng=0)]
        with pytest.raises(ConfigurationError):
            NetworkSimulator(tags, channel, profile=PROFILE)

    def test_noise_and_snr_exclusive(self):
        with pytest.raises(ConfigurationError):
            make_sim([0.1], noise_std=0.1, snr_db=10.0)

    def test_empty_tags(self):
        with pytest.raises(ConfigurationError):
            NetworkSimulator([], ChannelModel({0: 0.1}),
                             profile=PROFILE)

    def test_bad_duration(self):
        sim = make_sim([0.1])
        with pytest.raises(ConfigurationError):
            sim.run_epoch(0.0)
        with pytest.raises(ConfigurationError):
            sim.run_epochs(0, 0.01)


class TestRunSchedule:
    def test_epoch_count_and_timing(self):
        from repro.phy.carrier import EpochSchedule
        sim = make_sim([0.1 + 0.05j])
        schedule = EpochSchedule(epoch_duration_s=0.008, gap_s=0.002,
                                 n_epochs=3)
        captures = sim.run_schedule(schedule)
        assert len(captures) == 3
        starts = [c.trace.start_time_s for c in captures]
        assert starts == pytest.approx([0.0, 0.010, 0.020])

    def test_offsets_rerandomize_across_schedule(self):
        from repro.phy.carrier import EpochSchedule
        sim = make_sim([0.1 + 0.05j])
        schedule = EpochSchedule(epoch_duration_s=0.008, gap_s=0.001,
                                 n_epochs=4)
        captures = sim.run_schedule(schedule)
        offsets = {round(c.truths[0].offset_samples, 6)
                   for c in captures}
        assert len(offsets) > 1
