"""Chaos harness: randomized impairment cocktails against the decoder.

The acceptance bar for the hardened decode path: many seeded cocktails
on a dense (16-tag) epoch with *zero* uncaught exceptions, while a
clean capture decodes bit-identically to the unguarded decoder.
"""

import numpy as np
import pytest

from repro.core.session import SessionDecoder
from repro.robustness import impair_capture, random_cocktail
from repro.types import EpochResult

from ..conftest import build_decoder, build_network

N_COCKTAILS = 50


@pytest.fixture(scope="module")
def dense_capture(fast_profile):
    """One 16-tag epoch: the densest workload the suite decodes."""
    sim = build_network(16, fast_profile, seed=42)
    return sim.run_epoch(0.01)


def test_chaos_cocktails_never_raise(dense_capture, fast_profile):
    degraded = 0
    for seed in range(N_COCKTAILS):
        cocktail = random_cocktail(rng=1000 + seed)
        impaired = impair_capture(dense_capture, cocktail,
                                  rng=2000 + seed)
        decoder = build_decoder(fast_profile, seed=seed)
        result = decoder.decode_epoch(impaired.trace)
        assert isinstance(result, EpochResult)
        assert result.epoch_index == 0
        degraded += int(result.degraded)
    # The harness must actually be stressing the guard, not decoding
    # fifty effectively-clean captures.
    assert degraded > 0


def test_chaos_session_decoder_never_raises(dense_capture, fast_profile):
    """Warm-start caches survive an impaired epoch stream."""
    decoder = build_decoder(fast_profile, seed=3)
    session = SessionDecoder(config=decoder.config, rng=3)
    sim = build_network(16, fast_profile, seed=42)
    for epoch in range(8):
        capture = sim.run_epoch(0.01)
        if epoch % 2 == 1:
            capture = impair_capture(
                capture, random_cocktail(rng=300 + epoch),
                rng=400 + epoch)
        result = session.decode_epoch(capture.trace)
        assert isinstance(result, EpochResult)


def test_clean_capture_bit_identical_with_guard(dense_capture,
                                                fast_profile):
    """The guard's clean fast path must not perturb the decode at all:
    same streams, same bits, same offsets, to the last ulp."""
    guarded = build_decoder(fast_profile, seed=5).decode_epoch(
        dense_capture.trace)
    unguarded = build_decoder(
        fast_profile, seed=5,
        enable_trace_guard=False).decode_epoch(dense_capture.trace)
    assert guarded.n_streams == unguarded.n_streams
    for a, b in zip(guarded.streams, unguarded.streams):
        np.testing.assert_array_equal(a.bits, b.bits)
        assert a.offset_samples == b.offset_samples
        assert a.period_samples == b.period_samples
        assert a.confidence == b.confidence
    assert guarded.n_edges_detected == unguarded.n_edges_detected
    assert guarded.trace_health is not None
    assert guarded.trace_health.verdict == "clean"
    assert unguarded.trace_health is None
    # The guard adds no fault of its own; any degradation (e.g. an
    # unresolvable collision in a dense epoch) is identical both ways.
    assert [(f.stage, f.error_type, f.n_colliders)
            for f in guarded.degraded_streams] == \
        [(f.stage, f.error_type, f.n_colliders)
         for f in unguarded.degraded_streams]
    assert all(f.stage != "guard" for f in guarded.degraded_streams)
