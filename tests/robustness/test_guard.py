"""Tests for the decode-path trace guard."""

import numpy as np
import pytest

from repro.errors import (ConfigurationError, FlatlineSignalError,
                          NonFiniteSignalError, SaturatedSignalError,
                          SignalQualityError)
from repro.robustness.guard import GuardConfig, sanitize_trace
from repro.types import IQTrace


def _noisy_trace(n=4000, seed=0, base=0.5 + 0.3j, noise=0.02):
    rng = np.random.default_rng(seed)
    samples = base + noise * (rng.normal(size=n)
                              + 1j * rng.normal(size=n))
    return IQTrace(samples=samples, sample_rate_hz=2.5e6,
                   allow_nonfinite=True)


class TestCleanPath:
    def test_clean_trace_returned_unchanged_same_object(self):
        trace = _noisy_trace()
        out, health = sanitize_trace(trace)
        assert out is trace
        assert health.verdict == "clean"
        assert health.is_clean
        assert health.n_nonfinite == 0

    def test_clean_path_preserves_derived_caches(self):
        trace = _noisy_trace()
        prefix = trace.prefix_sum()
        out, _ = sanitize_trace(trace)
        assert out.prefix_sum() is prefix


class TestNonFiniteRepair:
    def test_short_gap_interpolated(self):
        trace = _noisy_trace()
        trace.samples[100:110] = np.nan
        out, health = sanitize_trace(trace)
        assert out is not trace
        assert np.all(np.isfinite(out.samples.real))
        assert health.verdict == "degraded"
        assert health.n_interpolated == 10
        assert health.repaired_spans == [(100, 110)]
        # Interpolation bridges the gap between its finite neighbours.
        assert abs(out.samples[105] - trace.samples[99]) < 0.5

    def test_long_run_excised_keeps_longest_region(self):
        trace = _noisy_trace(n=4000)
        trace.samples[1000:1500] = np.nan  # longer than max_interp_gap
        out, health = sanitize_trace(trace)
        assert out.samples.size == 2500          # [1500, 4000)
        assert health.origin_start == 1500
        assert health.n_excised == 1500
        assert health.to_original_index(0) == 1500
        # The sanitized timebase matches the region it came from.
        assert out.start_time_s == pytest.approx(1500 / 2.5e6)

    def test_mostly_nonfinite_rejected_with_fraction(self):
        trace = _noisy_trace(n=1000)
        trace.samples[:800] = np.nan
        with pytest.raises(NonFiniteSignalError) as excinfo:
            sanitize_trace(trace)
        assert excinfo.value.fraction == pytest.approx(0.8)
        assert excinfo.value.health.verdict == "rejected"

    def test_no_usable_region_rejected(self):
        trace = _noisy_trace(n=300)
        # Pepper the trace with runs longer than the interpolation
        # budget so no clean region reaches the minimum usable length.
        for start in range(0, 300, 10):
            trace.samples[start:start + 2] = np.nan
        cfg = GuardConfig(max_interp_gap=1, min_usable_samples=64,
                          max_bad_fraction=0.9)
        with pytest.raises(SignalQualityError):
            sanitize_trace(trace, cfg)

    def test_inf_treated_like_nan(self):
        trace = _noisy_trace()
        trace.samples[50:55] = np.inf
        out, health = sanitize_trace(trace)
        assert np.all(np.isfinite(out.samples.real))
        assert health.n_interpolated == 5


class TestQualityDetection:
    def test_flatline_rejected(self):
        trace = IQTrace(samples=np.full(1000, 0.4 + 0.1j),
                        sample_rate_hz=2.5e6)
        with pytest.raises(FlatlineSignalError):
            sanitize_trace(trace)

    def test_heavy_saturation_rejected(self):
        trace = _noisy_trace(n=2000)
        rail = float(np.abs(trace.samples.real).max())
        trace.samples[200:1800] = rail + 1j * rail
        with pytest.raises(SaturatedSignalError) as excinfo:
            sanitize_trace(trace)
        assert excinfo.value.fraction > 0.5

    def test_light_clipping_flags_degraded(self):
        trace = _noisy_trace(n=4000)
        rail = float(np.abs(trace.samples.real).max()) * 1.5
        trace.samples[100:150] = rail + 1j * rail
        out, health = sanitize_trace(trace)
        assert out is trace  # clipping is reported, not repaired
        assert health.verdict == "degraded"
        assert health.n_clipped > 0

    def test_noiseless_holds_not_mistaken_for_clipping(self):
        # A noiseless synthetic capture legitimately repeats its peak
        # level for whole bit holds; that is not ADC saturation.
        square = np.tile(np.concatenate([np.full(50, 0.6 + 0.2j),
                                         np.full(50, 0.4 + 0.1j)]), 20)
        trace = IQTrace(samples=square, sample_rate_hz=2.5e6)
        out, health = sanitize_trace(trace)
        assert out is trace
        assert health.verdict == "clean"


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"max_interp_gap": 0},
        {"max_bad_fraction": 0.0},
        {"max_bad_fraction": 1.5},
        {"min_usable_samples": 1},
        {"min_clip_run": 0},
        {"clip_reject_fraction": 0.0},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            GuardConfig(**kwargs)
