"""The decode-path guard under frequency-selective impairments.

Multipath reshapes the waveform the guard inspects — echoes smear
edges, raise the apparent noise floor, and change the amplitude
statistics the saturation/flatline detectors key on.  These tests pin
the guard's contract in that regime: a clean multipath capture passes
through untouched (same object, caches intact), repairs of co-occurring
dropouts stay deterministic, rejection thresholds still fire, and the
truth-preserving ``impair_capture`` path composes with the guard so a
guarded decode of any multipath cocktail never raises through the
pipeline's confinement.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SignalQualityError
from repro.robustness.guard import GuardConfig, sanitize_trace
from repro.robustness.impairments import (MultipathChannel,
                                          NonFiniteBurst, TagMobility,
                                          apply_impairments,
                                          impair_capture,
                                          random_cocktail)
from repro.types import IQTrace

from ..conftest import build_decoder, build_network


def _multipath_trace(seed=0, n=20_000, preset="hallway"):
    rng = np.random.default_rng(seed)
    base = 0.5 + 0.3j + 0.02 * (rng.normal(size=n)
                                + 1j * rng.normal(size=n))
    trace = IQTrace(samples=base, sample_rate_hz=2.5e6)
    return apply_impairments(
        trace, [MultipathChannel(preset=preset)], rng=seed)


@pytest.mark.parametrize("preset", ["room", "hallway", "exponential"])
def test_clean_multipath_trace_passes_unchanged(preset):
    trace = _multipath_trace(seed=3, preset=preset)
    out, health = sanitize_trace(trace)
    assert out is trace
    assert health.is_clean


def test_multipath_plus_nonfinite_repair_is_deterministic():
    def run():
        trace = _multipath_trace(seed=7)
        trace.samples[500:540] = np.nan
        marked = IQTrace(samples=trace.samples,
                         sample_rate_hz=trace.sample_rate_hz,
                         allow_nonfinite=True)
        return sanitize_trace(marked)

    out_a, health_a = run()
    out_b, health_b = run()
    assert health_a.verdict == health_b.verdict == "degraded"
    assert health_a.n_nonfinite == health_b.n_nonfinite == 40
    np.testing.assert_array_equal(out_a.samples, out_b.samples)
    assert np.all(np.isfinite(out_a.samples.real))


def test_multipath_does_not_mask_rejection():
    trace = _multipath_trace(seed=1)
    trace.samples[: int(0.8 * trace.samples.size)] = np.nan
    marked = IQTrace(samples=trace.samples,
                     sample_rate_hz=trace.sample_rate_hz,
                     allow_nonfinite=True)
    with pytest.raises(SignalQualityError) as excinfo:
        sanitize_trace(marked)
    assert excinfo.value.health.verdict == "rejected"


@pytest.mark.parametrize("seed", range(8))
def test_guarded_decode_confines_multipath_cocktails(
        fast_profile, seed):
    """Property: impair → guard → decode never raises, truth intact."""
    sim = build_network(3, fast_profile, seed=seed)
    capture = sim.run_epoch(0.01)
    cocktail = random_cocktail(seed, frequency_selective=True)
    cocktail.append(MultipathChannel(preset="room"))
    impaired = impair_capture(capture, cocktail, rng=seed)
    assert impaired.truths == capture.truths
    decoder = build_decoder(fast_profile)
    result = decoder.decode_epoch(impaired.trace)
    # Confinement, not decoding prowess, is the contract here: the
    # decode returns a result object whatever the cocktail did.
    assert result is not None
    assert result.duration_s > 0


def test_guard_repairs_before_equalizer_sees_the_trace(fast_profile):
    """Pipeline ordering: guard output feeds the equalizer stage."""
    sim = build_network(3, fast_profile, seed=2)
    capture = sim.run_epoch(0.01)
    impaired = impair_capture(
        capture,
        [NonFiniteBurst(n_runs=1, max_run=30),
         MultipathChannel(preset="hallway"), TagMobility()],
        rng=4)
    decoder = build_decoder(fast_profile, enable_equalizer=True)
    result = decoder.decode_epoch(impaired.trace)
    assert result is not None
    # Whatever the equalizer decided, it saw finite samples: its
    # estimator rejects non-finite input with reason "nonfinite",
    # which can only happen if the guard failed to run first.
    report = result.equalizer
    assert report is None or report.reason != "nonfinite"
