"""Tests for the fault-injection impairment library."""

import numpy as np
import pytest

from repro.robustness.impairments import (AdcSaturation, BurstInterferer,
                                          CarrierPhaseJump, DcOffsetStep,
                                          NonFiniteBurst, SampleDropout,
                                          TruncateEpoch, apply_impairments,
                                          impair_capture, random_cocktail)
from repro.types import IQTrace

from ..conftest import build_network

ALL_IMPAIRMENTS = [
    SampleDropout(),
    NonFiniteBurst(),
    NonFiniteBurst(use_inf=True),
    AdcSaturation(),
    DcOffsetStep(),
    CarrierPhaseJump(),
    TruncateEpoch(),
    BurstInterferer(),
]


@pytest.fixture(scope="module")
def trace():
    rng = np.random.default_rng(0)
    samples = (0.5 + 0.3j
               + 0.05 * (rng.normal(size=5000)
                         + 1j * rng.normal(size=5000)))
    return IQTrace(samples=samples, sample_rate_hz=2.5e6)


@pytest.mark.parametrize("impairment", ALL_IMPAIRMENTS,
                         ids=lambda imp: type(imp).__name__)
def test_each_impairment_is_seed_deterministic(trace, impairment):
    a = apply_impairments(trace, [impairment], rng=7)
    b = apply_impairments(trace, [impairment], rng=7)
    np.testing.assert_array_equal(a.samples, b.samples)
    c = apply_impairments(trace, [impairment], rng=8)
    assert a.samples.size != c.samples.size or \
        not np.array_equal(a.samples, c.samples)


@pytest.mark.parametrize("impairment", ALL_IMPAIRMENTS,
                         ids=lambda imp: type(imp).__name__)
def test_each_impairment_changes_something(trace, impairment):
    out = apply_impairments(trace, [impairment], rng=3)
    assert out.samples.size != trace.samples.size or \
        not np.array_equal(out.samples, trace.samples)


def test_original_trace_untouched(trace):
    before = trace.samples.copy()
    apply_impairments(trace, ALL_IMPAIRMENTS, rng=1)
    np.testing.assert_array_equal(trace.samples, before)


def test_nonfinite_burst_survives_trace_construction(trace):
    out = apply_impairments(trace, [NonFiniteBurst(n_runs=3)], rng=2)
    assert out.allow_nonfinite
    assert not np.all(np.isfinite(out.samples.real))


def test_truncate_respects_keep_fraction(trace):
    for seed in range(10):
        out = apply_impairments(
            trace, [TruncateEpoch(min_keep_fraction=0.6)], rng=seed)
        assert out.samples.size >= int(0.6 * trace.samples.size)
        assert out.samples.size <= trace.samples.size


def test_impair_capture_preserves_ground_truth(fast_profile):
    sim = build_network(2, fast_profile, seed=9)
    capture = sim.run_epoch(0.005)
    before = capture.trace.samples.copy()
    impaired = impair_capture(capture, [SampleDropout()], rng=4)
    assert impaired.truths == capture.truths
    assert impaired.epoch_index == capture.epoch_index
    np.testing.assert_array_equal(capture.trace.samples, before)
    assert not np.array_equal(impaired.trace.samples,
                              capture.trace.samples)


def test_random_cocktail_deterministic_and_nonempty():
    for seed in range(20):
        a = random_cocktail(rng=seed)
        b = random_cocktail(rng=seed)
        assert a == b
        assert len(a) >= 1
    # Different seeds explore different menus.
    assert random_cocktail(rng=0) != random_cocktail(rng=1)
