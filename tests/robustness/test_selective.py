"""Frequency-selective and mobile impairments: determinism and truth.

The new channel-level ingredients (:class:`MultipathChannel`,
:class:`TagMobility`, :class:`SweptInterferer`) must honour the same
contracts the flat-channel menu does — seed-determinism, composability
through ``apply_impairments``/``impair_capture``, truth preservation —
plus one of their own: extending the cocktail menu must not reshuffle
the flat-ingredient draws of existing seeds (the selective menu is a
suffix, so old chaos seeds keep their old flat cocktails).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.multipath import MultipathProfile, apply_multipath
from repro.robustness.impairments import (MultipathChannel,
                                          NonFiniteBurst,
                                          SweptInterferer, TagMobility,
                                          apply_impairments,
                                          impair_capture,
                                          random_cocktail)
from repro.types import IQTrace

from ..conftest import build_network

SELECTIVE = (MultipathChannel, TagMobility, SweptInterferer)


@pytest.fixture()
def trace():
    rng = np.random.default_rng(0)
    base = 0.5 + 0.3j + 0.02 * (rng.normal(size=20_000)
                                + 1j * rng.normal(size=20_000))
    return IQTrace(samples=base, sample_rate_hz=2.5e6)


@pytest.mark.parametrize("impairment", [
    MultipathChannel(preset="room"),
    MultipathChannel(preset="hallway"),
    MultipathChannel(preset="exponential"),
    MultipathChannel(delays_samples=(0, 40), gains=(1.0, 0.5j)),
    TagMobility(),
    SweptInterferer(),
])
def test_selective_impairments_seed_deterministic(trace, impairment):
    out_a = apply_impairments(trace, [impairment], rng=123)
    out_b = apply_impairments(trace, [impairment], rng=123)
    np.testing.assert_array_equal(out_a.samples, out_b.samples)
    seedless = (isinstance(impairment, MultipathChannel)
                and impairment.delays_samples)
    if not seedless:
        out_c = apply_impairments(trace, [impairment], rng=124)
        assert not np.array_equal(out_a.samples, out_c.samples)


@pytest.mark.parametrize("impairment", [
    MultipathChannel(preset="hallway"), TagMobility(),
    SweptInterferer(),
])
def test_selective_impairments_change_something(trace, impairment):
    out = apply_impairments(trace, [impairment], rng=5)
    assert not np.array_equal(out.samples, trace.samples)
    assert out.samples is not trace.samples


def test_explicit_taps_need_both_fields():
    with pytest.raises(ConfigurationError):
        MultipathChannel(delays_samples=(0, 10))
    with pytest.raises(ConfigurationError):
        MultipathChannel(preset="attic")


def test_multipath_skips_nonfinite_runs(trace):
    cocktail = [NonFiniteBurst(n_runs=2, max_run=50),
                MultipathChannel(preset="hallway")]
    out = apply_impairments(trace, cocktail, rng=9)
    bad = ~np.isfinite(out.samples.real)
    # The NaN burst survives (it is re-imposed after convolution)
    # but does not smear across the echo delay spread.
    assert 0 < bad.sum() <= 2 * 50
    finite = out.samples[~bad]
    assert np.all(np.isfinite(finite.real))


def test_explicit_multipath_matches_phy_convolution(trace):
    profile = MultipathProfile(delays_samples=(0, 32, 64),
                               gains=(1.0, 0.4, 0.2j))
    expected = apply_multipath(trace.samples, profile)
    out = apply_impairments(
        trace,
        [MultipathChannel(delays_samples=(0, 32, 64),
                          gains=(1.0, 0.4, 0.2j))],
        rng=0)
    np.testing.assert_allclose(out.samples, expected)


def test_impair_capture_preserves_truth_under_multipath(fast_profile):
    sim = build_network(4, fast_profile, seed=5)
    capture = sim.run_epoch(0.01)
    pristine = capture.trace.samples.copy()
    impaired = impair_capture(
        capture,
        [MultipathChannel(preset="hallway"), TagMobility()],
        rng=3)
    assert impaired.truths == capture.truths
    assert impaired.trace is not capture.trace
    np.testing.assert_array_equal(capture.trace.samples, pristine)


def test_flat_cocktails_are_a_stable_prefix():
    for seed in range(40):
        flat = random_cocktail(seed, frequency_selective=False)
        full = random_cocktail(seed, frequency_selective=True)
        # The flat draw is byte-for-byte the head of the full draw;
        # anything extra is drawn from the selective suffix only.
        assert [repr(i) for i in full[:len(flat)]] == \
            [repr(i) for i in flat]
        assert all(isinstance(extra, SELECTIVE)
                   for extra in full[len(flat):])


def test_selective_ingredients_actually_appear():
    hits = set()
    for seed in range(60):
        for ingredient in random_cocktail(seed):
            if isinstance(ingredient, SELECTIVE):
                hits.add(type(ingredient).__name__)
    assert hits == {"MultipathChannel", "TagMobility",
                    "SweptInterferer"}
