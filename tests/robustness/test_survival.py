"""The survival matrix: classification, determinism, and the flagship
acceptance cell.

The full scenario × config sweep runs in CI's chaos-service job; here
the suite pins the classification taxonomy, the registry's integrity,
matrix serialization, and the two cells the whole tentpole hangs on:
the flat baseline must decode identically well under both configs, and
``hallway_14`` must be lost at baseline yet decoded with the equalizer
pre-stage enabled.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.robustness.scenarios import (SCENARIOS, Scenario,
                                        build_scenario_capture)
from repro.robustness.survival import (DECODER_CONFIGS,
                                       classify_decode,
                                       run_survival_matrix)

_BY_NAME = {s.name: s for s in SCENARIOS}


def test_classification_taxonomy():
    assert classify_decode(6, 6, 0.95) == "decoded"
    assert classify_decode(6, 6, 0.84) == "degraded"
    assert classify_decode(5, 6, 0.95) == "degraded"
    assert classify_decode(2, 6, 0.10) == "confined"
    assert classify_decode(0, 6, 0.0) == "confined"


def test_registry_names_are_unique_and_cover_the_regimes():
    names = [s.name for s in SCENARIOS]
    assert len(names) == len(set(names))
    assert {"flat_6", "flat_14", "hallway_14"} <= set(names)
    kinds = {type(i).__name__
             for s in SCENARIOS for i in s.impairments}
    assert {"MultipathChannel", "TagMobility",
            "SweptInterferer"} <= kinds


def test_scenario_captures_are_deterministic():
    scenario = _BY_NAME["room_10"]
    a = build_scenario_capture(scenario)
    b = build_scenario_capture(scenario)
    np.testing.assert_array_equal(a.trace.samples, b.trace.samples)
    assert [t.tag_id for t in a.truths] == \
        [t.tag_id for t in b.truths]
    for ta, tb in zip(a.truths, b.truths):
        np.testing.assert_array_equal(ta.bits, tb.bits)


@pytest.fixture(scope="module")
def key_cells():
    """The two rows the acceptance criteria name, swept once."""
    return run_survival_matrix(
        scenarios=[_BY_NAME["flat_6"], _BY_NAME["hallway_14"]])


def test_flat_baseline_decodes_under_both_configs(key_cells):
    row = key_cells.cells["flat_6"]
    for config in DECODER_CONFIGS:
        assert row[config].classification == "decoded"
    # The equalizer refused to touch the flat channel.
    assert not row["equalizer"].equalizer_applied
    assert row["equalizer"].goodput == pytest.approx(
        row["baseline"].goodput)


def test_hallway_14_is_rescued_by_the_equalizer(key_cells):
    """The flagship cell: lost without the pre-stage, decoded with it."""
    row = key_cells.cells["hallway_14"]
    assert row["baseline"].classification in ("degraded", "confined")
    assert row["equalizer"].classification == "decoded"
    assert row["equalizer"].equalizer_applied
    assert row["equalizer"].goodput >= 0.85
    assert row["equalizer"].goodput > row["baseline"].goodput


def test_matrix_serializes_for_the_ci_artifact(key_cells):
    payload = key_cells.to_dict()
    rendered = json.loads(json.dumps(payload))
    assert rendered["configs"] == sorted(DECODER_CONFIGS)
    assert set(rendered["thresholds"]) == {"decoded_goodput",
                                           "confined_goodput"}
    cell = rendered["scenarios"]["hallway_14"]["equalizer"]
    assert set(cell) == {"classification", "matched", "n_tags",
                         "goodput", "error", "equalizer_applied"}


def test_failed_classification_captures_the_exception(monkeypatch):
    """A decode that raises is recorded, not propagated."""
    import repro.robustness.survival as survival
    from repro.types import SimulationProfile

    class _Boom:
        def __init__(self, *args, **kwargs):
            pass

        def decode_epoch(self, trace):
            raise RuntimeError("confinement broke")

    monkeypatch.setattr(survival, "LFDecoder", _Boom)
    cell = survival._decode_cell(
        Scenario(name="tiny", description="", n_tags=2,
                 epoch_seconds=0.002),
        {}, SimulationProfile.fast())
    assert cell.classification == "failed"
    assert "RuntimeError" in cell.error
