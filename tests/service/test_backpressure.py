"""Backpressure and supervision behaviour of the streaming service.

A gate-controlled fake decoder (injected through the
``ServiceConfig.decoder_factory`` seam) freezes the shard worker
mid-decode so the tests can hold the service at a known queue state:
bounded depth under 2x-style overload, monotone shed counters, exact
terminal accounting (every submitted chunk reaches exactly one of
ok/degraded/failed/shed), closed-loop blocking under the ``block``
policy, inline fallback when the ring is full, and the retry →
cold-respawn ladder for failing streams.

No real decoding happens here; the golden end-to-end test
(``test_service_golden.py``) covers the decode math.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.service import (BLOCK, SHED_OLDEST, ChunkResult,
                           DecodeService, ServiceConfig, STATUS_FAILED,
                           STATUS_OK, STATUS_SHED)
from repro.types import EpochResult, IQTrace


def _trace(n: int = 64, fs: float = 1e6, t0: float = 0.0) -> IQTrace:
    return IQTrace(samples=np.ones(n, dtype=np.complex128),
                   sample_rate_hz=fs, start_time_s=t0)


class _GatedDecoder:
    """decode_epoch blocks on ``gate``; raises while ``failing``."""

    def __init__(self, gate: threading.Event):
        self.gate = gate
        self.failing = False
        self.calls = 0
        self.builds = 1

    def decode_epoch(self, trace, sample_offset=0.0):
        self.calls += 1
        self.gate.wait(timeout=30.0)
        if self.failing:
            raise RuntimeError("injected decode failure")
        return EpochResult(duration_s=trace.duration_s)


class _Harness:
    """One-shard service around a single shared gated decoder."""

    def __init__(self, **config_kwargs):
        self.gate = threading.Event()
        self.decoder = _GatedDecoder(self.gate)
        self.built = 0

        def factory(stream_key, seed):
            self.built += 1
            return self.decoder

        config_kwargs.setdefault("n_shards", 1)
        config_kwargs.setdefault("queue_depth", 2)
        # The gate/counter seams are in-process shared state: pin the
        # thread executor so the REPRO_SERVICE_EXECUTOR matrix cannot
        # fork them away from the asserting test.
        config_kwargs.setdefault("executor", "thread")
        self.config = ServiceConfig(decoder_factory=factory,
                                    **config_kwargs)
        self.service = DecodeService(self.config)
        self.results: list = []
        self.service.add_result_handler(self.results.append)

    def by_status(self, status: str) -> list:
        return [r for r in self.results if r.status == status]


def test_queue_depth_is_bounded_and_oldest_sheds_first():
    async def run():
        h = _Harness(overflow=SHED_OLDEST, queue_depth=2)
        shed_series = []
        async with h.service:
            for i in range(10):
                await h.service.submit(0, 0, _trace(), meta={"i": i})
                snap = h.service.snapshot()
                assert max(snap.queue_depths.values()) <= 2
                shed_series.append(snap.shed)
            h.gate.set()
            await h.service.drain()
            snap = h.service.snapshot()
        # Shed counter only ever grows.
        assert shed_series == sorted(shed_series)
        assert snap.shed > 0
        # Exact accounting: every chunk reached one terminal state.
        assert snap.submitted == 10
        assert snap.completed == 10
        assert snap.decoded + snap.failed + snap.shed == 10
        # Exactly one result per submitted chunk, meta echoed back.
        assert sorted(r.frame.meta["i"] for r in h.results) == \
            list(range(10))
        # Shed frames are older than every decoded frame that was
        # queued behind them (freshest data wins under overload).
        shed_seqs = {r.frame.seq for r in h.by_status(STATUS_SHED)}
        ok_seqs = {r.frame.seq for r in h.by_status(STATUS_OK)}
        assert max(shed_seqs) < max(ok_seqs)
        # No decoded chunk lost its result record.
        assert all(r.result is not None for r in h.by_status(STATUS_OK))
        assert all(r.result is None for r in h.by_status(STATUS_SHED))

    asyncio.run(run())


def test_shed_frames_release_their_ring_space():
    async def run():
        h = _Harness(overflow=SHED_OLDEST, queue_depth=2)
        async with h.service:
            for _ in range(20):
                await h.service.submit(0, 0, _trace())
            h.gate.set()
            await h.service.drain()
            # Every region retired — shed or decoded alike — so a
            # long-running service cannot leak ring space.
            assert h.service._workers[0].ring.live_frames == 0

    asyncio.run(run())


def test_block_policy_applies_producer_backpressure():
    async def run():
        h = _Harness(overflow=BLOCK, queue_depth=2)
        async with h.service:
            await h.service.submit(0, 0, _trace())
            # Wait for the worker to pop it into the (gated) decode so
            # the queue state below is deterministic: 1 in flight...
            while h.decoder.calls < 1:
                await asyncio.sleep(0.005)
            # ...plus 2 queued fit without blocking.
            for _ in range(2):
                await h.service.submit(0, 0, _trace())
            # The 4th must wait for room: a short wait_for times out.
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(
                    h.service.submit(0, 0, _trace()), timeout=0.3)
            h.gate.set()
            await h.service.drain()
            snap = h.service.snapshot()
        assert snap.shed == 0          # blocking never sheds
        assert snap.decoded == snap.submitted

    asyncio.run(run())


def test_ring_full_falls_back_to_inline_transport():
    async def run():
        # Ring fits exactly one 64-sample chunk; while it is live the
        # next chunks must travel inline rather than fail or block.
        h = _Harness(overflow=SHED_OLDEST, queue_depth=4,
                     ring_samples=64)
        async with h.service:
            for _ in range(3):
                await h.service.submit(0, 0, _trace(64))
            h.gate.set()
            await h.service.drain()
            snap = h.service.snapshot()
        assert snap.inline_fallbacks >= 1
        assert snap.decoded == 3       # inline chunks decode fine
        inline = [r for r in h.results if r.frame.frame_id < 0]
        assert len(inline) == snap.inline_fallbacks

    asyncio.run(run())


def test_failing_stream_retries_then_respawns_cold():
    async def run():
        h = _Harness(overflow=SHED_OLDEST, queue_depth=8,
                     max_attempts=2, respawn_after=2)
        h.gate.set()                   # never block, always fail
        h.decoder.failing = True
        async with h.service:
            for _ in range(4):
                await h.service.submit(0, 0, _trace())
            await h.service.drain()
            snap = h.service.snapshot()
            page = h.service.render_metrics()
        failed = h.by_status(STATUS_FAILED)
        assert snap.failed == 4 and len(failed) == 4
        # Each chunk used its full retry budget...
        assert all(r.attempts == 2 for r in failed)
        assert all("injected decode failure" in r.error
                   for r in failed)
        # ...and after every `respawn_after` consecutive failures the
        # stream's session was rebuilt cold through the factory.
        assert h.built >= 3            # initial + >= 2 respawns
        assert "lf_session_respawns_total" in page
        assert 'kind="stream_session"' in page

    asyncio.run(run())


def test_lru_eviction_caps_live_sessions():
    async def run():
        h = _Harness(overflow=SHED_OLDEST, queue_depth=8,
                     max_sessions=2)
        h.gate.set()
        async with h.service:
            # 4 distinct streams through a 2-session cap.
            for reader in range(4):
                await h.service.submit(reader, 0, _trace())
            await h.service.drain()
            worker = h.service._workers[0]
            assert len(worker.pool._sessions) <= 2
        assert h.built == 4            # each stream built once

    asyncio.run(run())


def test_submit_before_start_is_an_error():
    async def run():
        h = _Harness()
        from repro.errors import ServiceError
        with pytest.raises(ServiceError):
            await h.service.submit(0, 0, _trace())

    asyncio.run(run())


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ServiceConfig(n_shards=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(queue_depth=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(overflow="drop_newest")
    with pytest.raises(ConfigurationError):
        ServiceConfig(max_attempts=0)
