"""Service-layer fault injection: the chaos injector and its ladders.

A counting fake decoder behind :func:`chaos_service_config` lets each
test pin one fault family — stalls, crashes, worker kills, shm
corruption, clock skew — and assert the service's supervision ladder
(retry → cold respawn → shed) keeps the terminal invariants: exact
accounting (submitted == decoded + failed + shed), bounded queues, and
zero exceptions escaping a worker thread other than the deliberate
kills.  A final end-to-end test runs the real soak under the
``everything`` cocktail.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.service import (CHAOS_COCKTAILS, ChaosConfig,
                           ChaosCrashError, ChaosWorkerKill,
                           DecodeService, SHED_OLDEST, ServiceConfig,
                           capture_thread_exceptions,
                           chaos_service_config)
from repro.service.soak import SoakConfig, run_soak
from repro.types import EpochResult, IQTrace


def _trace(n: int = 64, fs: float = 1e6, t0: float = 0.0) -> IQTrace:
    return IQTrace(samples=np.ones(n, dtype=np.complex128),
                   sample_rate_hz=fs, start_time_s=t0)


class _CountingDecoder:
    """Records every call and whether its samples were NaN-scribbled."""

    def __init__(self):
        self.calls = 0
        self.saw_nan = 0
        self._lock = threading.Lock()

    def decode_epoch(self, trace, sample_offset=0.0):
        with self._lock:
            self.calls += 1
            if not np.all(np.isfinite(trace.samples.real)):
                self.saw_nan += 1
        return EpochResult(duration_s=trace.duration_s)


class _Harness:
    """One-shard chaos-wrapped service over a shared fake decoder."""

    def __init__(self, chaos: ChaosConfig, **config_kwargs):
        self.decoder = _CountingDecoder()
        config_kwargs.setdefault("n_shards", 1)
        config_kwargs.setdefault("queue_depth", 4)
        config_kwargs.setdefault("overflow", SHED_OLDEST)
        # The harness counts decoder calls through in-process shared
        # state, so it pins the thread executor regardless of the
        # REPRO_SERVICE_EXECUTOR matrix; process-executor chaos runs
        # through its own cross-process harness.
        config_kwargs.setdefault("executor", "thread")
        base = ServiceConfig(
            decoder_factory=lambda key, seed: self.decoder,
            **config_kwargs)
        self.config, self.injector = chaos_service_config(base, chaos)
        self.service = DecodeService(self.config)
        self.results: list = []
        self.service.add_result_handler(self.results.append)

    def by_status(self, status: str) -> list:
        return [r for r in self.results if r.status == status]


async def _pump(h: _Harness, n_chunks: int) -> None:
    async with h.service:
        for i in range(n_chunks):
            await h.service.submit(reader_id=0, antenna=0,
                                   trace=_trace(t0=i * 1e-4),
                                   sample_offset=0.0)
            # Let the single worker keep up so nothing sheds and
            # every chunk actually reaches the chaos decoder.
            while h.service.snapshot().queue_depths[0] >= 2:
                await asyncio.sleep(0.001)
        await h.service.drain()


def _accounting_exact(h: _Harness) -> bool:
    stats = h.service.snapshot()
    return stats.submitted == (stats.decoded + stats.failed
                               + stats.shed)


@pytest.mark.parametrize("kwargs", [
    dict(crash_rate=1.5), dict(kill_rate=-0.1),
    dict(stall_seconds=-1.0), dict(corrupt_max_run=0),
])
def test_invalid_chaos_config_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        ChaosConfig(**kwargs)


def test_cocktail_registry_is_active_and_valid():
    for name, cocktail in CHAOS_COCKTAILS.items():
        assert cocktail.active, name
    assert not ChaosConfig().active


def test_crashes_drive_retry_and_respawn_with_exact_accounting():
    h = _Harness(ChaosConfig(crash_rate=0.5, seed=3),
                 max_attempts=2, respawn_after=2)
    asyncio.run(_pump(h, 60))
    assert _accounting_exact(h)
    assert h.injector.counts()["crash"] > 0
    # Half the draws crash, so with 2 attempts some chunks fail
    # terminally and some succeed on retry.
    assert h.by_status("failed")
    assert h.by_status("ok")
    for outcome in h.by_status("failed"):
        assert "ChaosCrashError" in outcome.error


def test_kills_take_the_thread_down_but_accounting_survives():
    h = _Harness(ChaosConfig(kill_rate=0.3, seed=5))
    with capture_thread_exceptions() as escapes:
        asyncio.run(_pump(h, 40))
    assert _accounting_exact(h)
    assert h.injector.counts()["kill"] > 0
    # Every escape is the deliberate kill; nothing else got out.
    assert escapes.escapes
    assert escapes.unexpected == []
    killed = [r for r in h.by_status("failed")
              if "ChaosWorkerKill" in (r.error or "")]
    assert killed, "killed frames must still get a terminal verdict"
    # The service kept decoding after each kill (thread respawned).
    assert len(h.by_status("ok")) > 0


def test_corruption_scribbles_the_ring_in_place():
    h = _Harness(ChaosConfig(corrupt_rate=1.0, seed=1))
    asyncio.run(_pump(h, 10))
    assert _accounting_exact(h)
    assert h.injector.counts()["corrupt"] == h.decoder.calls
    # The decoder saw the NaNs through its zero-copy ring view.
    assert h.decoder.saw_nan == h.decoder.calls


def test_fault_draws_are_seed_deterministic():
    def run(seed: int):
        h = _Harness(ChaosConfig(crash_rate=0.4, stall_rate=0.2,
                                 stall_seconds=0.0, seed=seed))
        asyncio.run(_pump(h, 30))
        return (h.injector.counts(),
                [r.status for r in h.results])

    counts_a, statuses_a = run(7)
    counts_b, statuses_b = run(7)
    counts_c, _ = run(8)
    assert counts_a == counts_b
    assert statuses_a == statuses_b
    assert counts_a != counts_c


def test_skew_draws_are_deterministic_and_bounded():
    chaos = ChaosConfig(skew_rate=0.5, max_skew_seconds=0.25, seed=2)
    _, injector = chaos_service_config(ServiceConfig(), chaos)
    skews = [injector.skew_for(0, 0, seq) for seq in range(200)]
    _, injector2 = chaos_service_config(ServiceConfig(), chaos)
    assert skews == [injector2.skew_for(0, 0, s) for s in range(200)]
    hits = [s for s in skews if s]
    assert hits, "a 50% skew rate must fire within 200 draws"
    assert all(abs(s) <= 0.25 for s in hits)
    assert injector.counts()["skew"] == len(hits)


def test_everything_cocktail_soak_keeps_all_invariants():
    cfg = SoakConfig(n_readers=1, tags_per_reader=2, duration_s=0.5,
                     chaos_duration_s=1.5, pool_epochs=1,
                     overload=False, queue_depth=4)
    report = run_soak(
        cfg, chaos_cocktails={
            "everything": CHAOS_COCKTAILS["everything"]})
    phase = report.chaos["everything"]
    assert phase.accounting_exact
    assert phase.unexpected_thread_exceptions == 0
    assert phase.max_queue_depth <= cfg.queue_depth
    assert any(phase.injected.values()), phase.injected
    assert phase.decoded > 0
