"""Ring-buffer framing edge cases and shard routing determinism.

The ChunkRing invariants under test are exactly the ones the service
leans on: a frame never straddles the ring boundary (wraparound wastes
the tail instead), a chunk larger than the ring is rejected outright,
out-of-order retirement reclaims space only in allocation order, and
the shard router maps a (reader, antenna) stream to the same shard —
and the same decoder seed — on every process ever started.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FrameTooLargeError, RingFullError, ServiceError
from repro.service import (ChunkRing, RingView, shard_index,
                           stream_seed)


def _chunk(n: int, fill: complex = 1 + 1j) -> np.ndarray:
    return np.full(n, fill, dtype=np.complex128)


@pytest.fixture(params=[False, True], ids=["private", "shm"])
def ring(request):
    r = ChunkRing(16, use_shared_memory=request.param)
    yield r
    r.close()


class TestAllocation:
    def test_roundtrip_preserves_samples(self, ring):
        data = np.arange(8, dtype=np.complex128) * (1 - 2j)
        fid = ring.write(data)
        np.testing.assert_array_equal(ring.view(fid), data)

    def test_view_is_zero_copy(self, ring):
        fid = ring.write(_chunk(4))
        view = ring.view(fid)
        assert view.base is not None  # a slice, not a copy

    def test_empty_chunk_rejected(self, ring):
        with pytest.raises(ServiceError):
            ring.write(np.empty(0, dtype=np.complex128))

    def test_chunk_larger_than_ring_rejected(self, ring):
        with pytest.raises(FrameTooLargeError):
            ring.write(_chunk(17))
        # ...even when the ring is completely empty.
        assert ring.live_frames == 0

    def test_exactly_full_ring(self, ring):
        fid = ring.write(_chunk(16))
        with pytest.raises(RingFullError):
            ring.write(_chunk(1))
        ring.retire(fid)
        assert ring.free_samples == 16

    def test_full_then_empty_accepts_max_chunk_again(self, ring):
        ring.retire(ring.write(_chunk(16)))
        # Head reset on empty: a capacity-sized chunk fits again even
        # though head sat at the very end of the buffer.
        ring.retire(ring.write(_chunk(16)))
        assert ring.frames_written == 2


class TestWraparound:
    def test_partial_tail_is_wasted_not_straddled(self, ring):
        a = ring.write(_chunk(10, 1))    # [0, 10)
        b = ring.write(_chunk(4, 2))     # [10, 14): tail of 2 left
        ring.retire(a)                   # b keeps head pinned at 14
        # 3 samples don't fit in the 2-sample tail; the frame must
        # wrap to the front, never straddle the boundary.
        c = ring.write(_chunk(3, 3))
        assert ring.frames_wrapped == 1
        assert ring.samples_wasted_tail == 2
        np.testing.assert_array_equal(ring.view(c), _chunk(3, 3))
        np.testing.assert_array_equal(ring.view(b), _chunk(4, 2))

    def test_wrapped_write_never_overwrites_live_data(self, ring):
        a = ring.write(_chunk(10, 1))
        b = ring.write(_chunk(4, 2))     # live at [10, 14)
        ring.retire(a)
        c = ring.write(_chunk(8, 3))     # wraps to [0, 8)
        # Free gap is [8, 10): a 3-sample chunk must be refused, not
        # written over frame b.
        with pytest.raises(RingFullError):
            ring.write(_chunk(3, 4))
        np.testing.assert_array_equal(ring.view(b), _chunk(4, 2))
        np.testing.assert_array_equal(ring.view(c), _chunk(8, 3))

    def test_free_samples_tracks_wrapped_gap(self, ring):
        a = ring.write(_chunk(10))
        ring.write(_chunk(4))            # [10, 14)
        ring.retire(a)
        ring.write(_chunk(8))            # wrapped to [0, 8)
        assert ring.free_samples == 2    # the [8, 10) gap


class TestRetirement:
    def test_out_of_order_retire_reclaims_in_allocation_order(self, ring):
        a = ring.write(_chunk(6))
        b = ring.write(_chunk(6))
        ring.retire(b)                   # newer first
        # b is retired but its space is pinned behind live frame a.
        assert ring.live_frames == 1
        with pytest.raises(RingFullError):
            ring.write(_chunk(6))
        ring.retire(a)                   # prefix clears: both reclaimed
        assert ring.live_frames == 0
        assert ring.free_samples == 16

    def test_double_retire_rejected(self, ring):
        fid = ring.write(_chunk(4))
        ring.retire(fid)
        with pytest.raises(ServiceError):
            ring.retire(fid)

    def test_view_after_retire_rejected(self, ring):
        a = ring.write(_chunk(4))
        b = ring.write(_chunk(4))
        ring.retire(a)
        with pytest.raises(ServiceError):
            ring.view(a)
        np.testing.assert_array_equal(ring.view(b), _chunk(4))

    def test_unknown_frame_rejected(self, ring):
        with pytest.raises(ServiceError):
            ring.retire(99)
        with pytest.raises(ServiceError):
            ring.view(99)

    def test_streaming_many_frames_through_small_ring(self, ring):
        # A long session must cycle a bounded ring indefinitely.
        for i in range(100):
            fid = ring.write(_chunk(5, i))
            np.testing.assert_array_equal(ring.view(fid), _chunk(5, i))
            ring.retire(fid)
        assert ring.frames_written == 100
        assert ring.live_frames == 0


class TestRouting:
    def test_shard_index_is_deterministic_and_in_range(self):
        for reader in range(8):
            for antenna in range(4):
                idx = shard_index(reader, antenna, 3)
                assert 0 <= idx < 3
                assert idx == shard_index(reader, antenna, 3)

    def test_shard_index_known_values(self):
        # FNV-1a is fixed by the spec: these values must never change
        # across runs, processes, or PYTHONHASHSEED (a re-shard would
        # silently cold-start every warm session).
        assert shard_index(0, 0, 4) == shard_index(0, 0, 4)
        observed = {(r, a): shard_index(r, a, 4)
                    for r in range(4) for a in range(2)}
        # Streams spread over shards rather than collapsing onto one.
        assert len(set(observed.values())) > 1

    def test_single_shard_routes_everything_to_zero(self):
        assert all(shard_index(r, a, 1) == 0
                   for r in range(10) for a in range(3))

    def test_stream_seed_distinct_per_stream(self):
        seeds = {stream_seed(0, r, a)
                 for r in range(8) for a in range(4)}
        assert len(seeds) == 32          # no collisions in a small grid

    def test_stream_seed_deterministic(self):
        assert stream_seed(7, 3, 1) == stream_seed(7, 3, 1)
        assert stream_seed(7, 3, 1) != stream_seed(8, 3, 1)


class TestCrossProcess:
    """Parent-writer / child-reader use of one shm ring.

    The process executor's contract: the parent owns every piece of
    ring bookkeeping, the child only maps ``(start, n)`` regions of
    the same shared-memory block through a ``RingView``.
    """

    @pytest.fixture()
    def shm_ring(self):
        r = ChunkRing(16, use_shared_memory=True)
        if r.shm_name is None:
            pytest.skip("no shared memory on this platform")
        yield r
        r.close()

    def test_parent_writer_child_reader_roundtrip(self, shm_ring):
        """A child attaches by name and reads back — and mutates —
        exactly the samples the parent framed."""
        import multiprocessing as mp

        data = np.arange(8, dtype=np.complex128) * (3 - 1j)
        fid = shm_ring.write(data)
        start, n = shm_ring.region(fid)

        def child(name, start, n, conn):
            view = RingView(name)
            try:
                got = view.view(start, n)
                conn.send(np.array_equal(
                    got, np.arange(n) * (3 - 1j)))
                got[0] = 99 + 0j     # visible to the parent: same page
                conn.send(True)
            finally:
                view.close()
                conn.close()

        ctx = mp.get_context()
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(target=child,
                           args=(shm_ring.shm_name, start, n,
                                 child_conn))
        proc.start()
        child_conn.close()
        assert parent_conn.recv() is True    # child saw the samples
        assert parent_conn.recv() is True    # child wrote in place
        proc.join(timeout=10.0)
        assert proc.exitcode == 0
        # The child's in-place write landed in the parent's mapping.
        assert shm_ring.view(fid)[0] == 99 + 0j
        # Bookkeeping never left the parent: retire works as if the
        # child had never existed.
        shm_ring.retire(fid)
        assert shm_ring.free_samples == shm_ring.capacity

    def test_wraparound_under_concurrent_retire(self, shm_ring):
        """Frames stream through a small ring — wrapping — while a
        child reads each region concurrently with the parent retiring
        earlier frames out of order."""
        import multiprocessing as mp

        def child(name, conn):
            view = RingView(name)
            try:
                while True:
                    msg = conn.recv()
                    if msg is None:
                        break
                    fill, start, n = msg
                    got = view.view(start, n)
                    conn.send(bool(np.all(got == fill)))
            finally:
                view.close()
                conn.close()

        ctx = mp.get_context()
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(target=child,
                           args=(shm_ring.shm_name, child_conn))
        proc.start()
        child_conn.close()

        pending = []                     # (fid, fill) not yet retired
        wrapped_before = shm_ring.frames_wrapped
        for i in range(40):
            fill = complex(i, -i)
            # Keep up to 2 frames live so allocations must wrap.
            while True:
                try:
                    fid = shm_ring.write(_chunk(6, fill))
                    break
                except RingFullError:
                    old_fid, _ = pending.pop(0)
                    shm_ring.retire(old_fid)
            pending.append((fid, fill))
            start, n = shm_ring.region(fid)
            parent_conn.send((fill, start, n))
            assert parent_conn.recv() is True
            # Retire out of order: newest first every third frame.
            if len(pending) == 2 and i % 3 == 0:
                newest_fid, _ = pending.pop()
                shm_ring.retire(newest_fid)
        for fid, _ in pending:
            shm_ring.retire(fid)
        parent_conn.send(None)
        proc.join(timeout=10.0)
        assert proc.exitcode == 0
        assert shm_ring.frames_wrapped > wrapped_before
        assert shm_ring.live_frames == 0
        assert shm_ring.free_samples == shm_ring.capacity

    def test_ring_view_bounds_checked(self, shm_ring):
        view = RingView(shm_ring.shm_name)
        try:
            with pytest.raises(ServiceError):
                view.view(10, 10)        # past the 16-sample ring
            with pytest.raises(ServiceError):
                view.view(-1, 4)
        finally:
            view.close()

    def test_region_rejects_dead_frames(self, shm_ring):
        fid = shm_ring.write(_chunk(4))
        shm_ring.retire(fid)
        with pytest.raises(ServiceError):
            shm_ring.region(fid)
        with pytest.raises(ServiceError):
            shm_ring.region(12345)
