"""Prometheus-style metrics registry: exposition format and math."""

from __future__ import annotations

import pytest

from repro.service import (MetricsRegistry, RegistrySnapshotter,
                           StageLatencyObserver, diff_snapshot)
from repro.service.metrics import Histogram


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_labels(self, registry):
        c = registry.counter("lf_test_total", "A test counter.")
        c.inc(1.0, shard="0")
        c.inc(2.0, shard="0")
        c.inc(5.0, shard="1")
        assert c.value(shard="0") == 3.0
        assert c.value(shard="1") == 5.0
        assert c.total() == 8.0

    def test_render_includes_help_type_and_cells(self, registry):
        c = registry.counter("lf_test_total", "A test counter.")
        c.inc(3.0, shard="0")
        page = registry.render()
        assert "# HELP lf_test_total A test counter." in page
        assert "# TYPE lf_test_total counter" in page
        assert 'lf_test_total{shard="0"} 3' in page

    def test_same_name_returns_same_family(self, registry):
        a = registry.counter("lf_x_total", "x")
        b = registry.counter("lf_x_total", "x")
        assert a is b


class TestGauge:
    def test_set_overwrites(self, registry):
        g = registry.gauge("lf_depth", "Queue depth.")
        g.set(4.0, shard="0")
        g.set(2.0, shard="0")
        assert g.value(shard="0") == 2.0
        assert "# TYPE lf_depth gauge" in registry.render()


class TestHistogram:
    def test_buckets_are_cumulative_in_render(self, registry):
        h = registry.histogram("lf_lat_seconds", "Latency.",
                               buckets=[0.01, 0.1, 1.0])
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        page = registry.render()
        assert 'lf_lat_seconds_bucket{le="0.01"} 1' in page
        assert 'lf_lat_seconds_bucket{le="0.1"} 2' in page
        assert 'lf_lat_seconds_bucket{le="1"} 3' in page
        assert 'lf_lat_seconds_bucket{le="+Inf"} 4' in page
        assert "lf_lat_seconds_count 4" in page

    def test_sum_tracks_observations(self, registry):
        h = registry.histogram("lf_lat_seconds", "Latency.",
                               buckets=[1.0])
        h.observe(0.25)
        h.observe(0.5)
        assert "lf_lat_seconds_sum 0.75" in registry.render()

    def test_quantile_interpolates(self):
        h = Histogram("h", "h", buckets=[0.1, 0.2, 0.4])
        for _ in range(50):
            h.observe(0.05)
        for _ in range(50):
            h.observe(0.15)
        p50 = h.quantile(0.5)
        assert 0.0 < p50 <= 0.2
        p99 = h.quantile(0.99)
        assert 0.1 < p99 <= 0.2

    def test_quantile_empty_is_nan(self):
        import math
        assert math.isnan(
            Histogram("h", "h", buckets=[1.0]).quantile(0.5))


class TestStageLatencyObserver:
    def test_stage_timings_and_faults_export(self, registry):
        class _Stage:
            name = "edges"

        observer = StageLatencyObserver(registry, shard=3,
                                        buckets=[0.1, 1.0])
        stage = _Stage()
        observer.on_stage_start(stage, None)
        observer.on_stage_end(stage, None, elapsed_s=0.05)

        class _Fault:
            stage = "kmeans"
            expected = True

        observer.on_stream_fault(_Fault(), None)
        page = registry.render()
        assert 'stage="edges"' in page
        assert 'shard="3"' in page
        assert "lf_stream_faults_total" in page
        assert 'expected="true"' in page


class TestSnapshotDelta:
    """The cross-process aggregation path: child registries ship
    snapshot deltas that merge into the parent's exposition."""

    def test_counter_delta_roundtrip(self, registry):
        c = registry.counter("lf_x_total", "x")
        c.inc(3.0, shard="0")
        snap = RegistrySnapshotter(registry)
        assert snap.delta() == {}        # nothing changed since init
        c.inc(2.0, shard="0")
        c.inc(1.0, shard="1")
        delta = snap.delta()
        parent = MetricsRegistry()
        parent.counter("lf_x_total", "x").inc(10.0, shard="0")
        parent.apply_delta(delta)
        # Only the increments since the snapshot merged, not the
        # child's absolute values.
        assert parent.counter("lf_x_total").value(shard="0") == 12.0
        assert parent.counter("lf_x_total").value(shard="1") == 1.0
        assert snap.delta() == {}        # drained

    def test_gauge_delta_adopts_current_value(self, registry):
        g = registry.gauge("lf_live", "live")
        snap = RegistrySnapshotter(registry)
        g.set(4.0, shard="2")
        parent = MetricsRegistry()
        parent.gauge("lf_live", "live").set(99.0, shard="2")
        parent.apply_delta(snap.delta())
        # Gauges are set, not summed: the child's truth wins for the
        # child's own (shard-labelled) series.
        assert parent.gauge("lf_live").value(shard="2") == 4.0

    def test_histogram_delta_preserves_buckets(self, registry):
        h = registry.histogram("lf_lat_seconds", "lat",
                               buckets=[0.1, 1.0])
        h.observe(0.05, shard="0")
        snap = RegistrySnapshotter(registry)
        h.observe(0.5, shard="0")
        delta = snap.delta()
        parent = MetricsRegistry()
        parent.apply_delta(delta)
        page = parent.render()
        # The family arrives with its bucket bounds and only the
        # post-snapshot observation.
        assert 'le="0.1"} 0' in page
        assert 'le="1"} 1' in page or 'le="1.0"} 1' in page

    def test_apply_delta_creates_missing_families(self):
        child = MetricsRegistry()
        child.counter("lf_new_total", "n").inc(2.0, kind="a")
        parent = MetricsRegistry()
        parent.apply_delta(child.snapshot())
        assert parent.counter("lf_new_total").value(kind="a") == 2.0

    def test_diff_drops_unchanged_families(self, registry):
        registry.counter("lf_idle_total", "i").inc(1.0)
        registry.gauge("lf_g", "g").set(0.0, shard="0")
        snap = registry.snapshot()
        delta = diff_snapshot(snap, snap)
        assert "lf_idle_total" not in delta
