"""Process-executor supervision: hangs, silent crashes, CLI shutdown.

The chaos suite covers *announced* child deaths (``ChaosWorkerKill``
raised inside the child's decode).  These tests cover the two failure
modes a real fleet hits that never announce themselves — a child that
hangs mid-frame (killed after ``child_timeout_s`` and the frame
resubmitted) and a child that dies silently (pipe EOF, e.g. the OOM
killer) — plus the ``python -m repro.service`` graceful-SIGTERM
contract.

Faults are triggered by magic markers in the submitted samples, so
they are deterministic, executor-independent, and reach the child
through the shared-memory ring like any other data.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.service import DecodeService, SHED_OLDEST, ServiceConfig
from repro.types import EpochResult, IQTrace

_SHM_DIR = Path("/dev/shm")

_HANG_MARKER = 123 + 456j
_CRASH_MARKER = 987 - 654j


class _MarkerDecoder:
    """Hangs or dies by whatever marker leads the chunk's samples.

    A crash consults ``crash_once_sentinel``: the first incarnation
    touches the sentinel and dies silently; the respawned child sees
    it and decodes normally — proving resubmission recovers the frame.
    """

    def __init__(self, crash_once_sentinel: str):
        self._sentinel = Path(crash_once_sentinel)

    def decode_epoch(self, trace, sample_offset=0.0):
        lead = complex(trace.samples[0])
        if lead == _HANG_MARKER:
            time.sleep(3600.0)
        if lead == _CRASH_MARKER and not self._sentinel.exists():
            self._sentinel.touch()
            os._exit(3)                  # silent: no pipe message
        return EpochResult(duration_s=trace.duration_s)


def _trace(lead: complex = 1 + 1j, n: int = 256) -> IQTrace:
    samples = np.ones(n, dtype=np.complex128)
    samples[0] = lead
    return IQTrace(samples=samples, sample_rate_hz=1e6,
                   allow_nonfinite=True)


def _run(tmp_path, traces, child_timeout_s=None):
    sentinel = str(tmp_path / "crashed-once")
    config = ServiceConfig(
        n_shards=1, queue_depth=8, overflow=SHED_OLDEST,
        executor="process", child_timeout_s=child_timeout_s,
        decoder_factory=lambda key, seed: _MarkerDecoder(sentinel))
    service = DecodeService(config)
    results: list = []
    service.add_result_handler(results.append)

    async def run():
        async with service:
            for trace in traces:
                await service.submit(reader_id=0, antenna=0,
                                     trace=trace, sample_offset=0.0)
            await service.drain()

    asyncio.run(run())
    return service, sorted(results, key=lambda r: r.frame.seq)


@pytest.mark.skipif(not _SHM_DIR.is_dir(),
                    reason="no /dev/shm on this platform")
def test_hung_child_is_killed_and_frame_fails_after_two_strikes(
        tmp_path):
    """A frame that hangs every incarnation burns both strikes and
    fails; frames around it decode and accounting stays exact."""
    traces = [_trace(), _trace(_HANG_MARKER), _trace()]
    start = time.perf_counter()
    service, results = _run(tmp_path, traces, child_timeout_s=0.5)
    wall = time.perf_counter() - start
    stats = service.snapshot()
    assert stats.submitted == 3
    assert stats.submitted == stats.decoded + stats.failed + stats.shed
    assert [r.status for r in results] == ["ok", "failed", "ok"]
    assert "hung" in results[1].error
    # Two strikes at 0.5s each, not a 3600s decode.
    assert wall < 30.0
    assert 'kind="worker_process"' in service.render_metrics()


@pytest.mark.skipif(not _SHM_DIR.is_dir(),
                    reason="no /dev/shm on this platform")
def test_silent_child_death_resubmits_and_recovers_the_frame(
        tmp_path):
    """A child that dies without a word (``os._exit``) loses its
    in-flight frame to resubmission, not to the void: the respawned
    child decodes it and the stream continues."""
    traces = [_trace(), _trace(_CRASH_MARKER), _trace()]
    service, results = _run(tmp_path, traces)
    stats = service.snapshot()
    assert stats.submitted == 3
    assert stats.submitted == stats.decoded + stats.failed + stats.shed
    # Every frame decoded — including the one whose first attempt
    # died with the child.
    assert [r.status for r in results] == ["ok", "ok", "ok"]
    assert stats.failed == 0
    assert 'kind="worker_process"' in service.render_metrics()


@pytest.mark.skipif(not _SHM_DIR.is_dir(),
                    reason="no /dev/shm on this platform")
def test_cli_sigterm_drains_and_leaves_no_shm(tmp_path):
    """``python -m repro.service`` under SIGTERM: exits 0, reports the
    early shutdown, and leaves /dev/shm exactly as it found it."""
    before = {p.name for p in _SHM_DIR.iterdir()}
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env.pop("REPRO_SERVICE_EXECUTOR", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service",
         "--seconds", "60", "--readers", "1", "--tags", "2",
         "--executor", "process", "--n-shards", "2", "--seed", "3"],
        cwd=str(Path(__file__).resolve().parents[2]),
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    try:
        # Let it get through traffic rendering and into the replay.
        time.sleep(8.0)
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=120.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, out
    assert "shutdown requested" in out
    leaked = {p.name for p in _SHM_DIR.iterdir()} - before
    assert not leaked, f"leaked /dev/shm segments: {sorted(leaked)}"
