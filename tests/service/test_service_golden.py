"""End-to-end service decode pinned against the offline path.

The service's whole correctness story is one sentence: streaming a
chunked capture through :class:`DecodeService` yields the same bits as
:func:`repro.reader.batch.decode_chunked` run offline over the same
capture with an identically-seeded session.  These tests pin that
sentence with the golden-digest fixture (6 tags, seed 11 — the same
capture the cross-PR golden digests are generated from), and verify
the warm-state claims: strictly positive cache hit counters after a
multi-chunk stream, and shard-local sessions under multi-reader load.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.pipeline import LFDecoderConfig
from repro.core.session_decoder import SessionDecoder
from repro.reader.batch import chunk_trace, decode_chunked
from repro.service import (BLOCK, DecodeService, ServiceConfig,
                           merge_stream_results, stream_seed)

from ..golden.generate_digests import _build_capture, digest_result


@pytest.fixture(scope="module")
def capture():
    profile, _, cap = _build_capture(6, seed=11, duration_s=0.008)
    return profile, cap


@pytest.fixture(scope="module")
def decoder_config(capture):
    profile, _ = capture
    return LFDecoderConfig(candidate_bitrates_bps=[10e3],
                           profile=profile)


def _stream_through_service(trace, config, *, reader=0, antenna=0,
                            n_shards=2, chunk_samples=None,
                            service_seed=0, executor=None):
    """Chunk ``trace`` and stream it through a fresh service; returns
    (per-chunk outcomes, merged result, cache stats, metrics page).

    ``executor=None`` keeps ServiceConfig's default (the
    REPRO_SERVICE_EXECUTOR matrix), so the whole golden suite runs
    under whichever executor CI selects."""
    chunk_samples = chunk_samples or len(trace) // 3
    fs = trace.sample_rate_hz
    extra = {} if executor is None else {"executor": executor}

    async def run():
        outcomes = []
        service = DecodeService(ServiceConfig(
            n_shards=n_shards, overflow=BLOCK, decoder=config,
            seed=service_seed, **extra))
        service.add_result_handler(outcomes.append)
        async with service:
            for chunk in chunk_trace(trace, chunk_samples):
                shift = (chunk.start_time_s - trace.start_time_s) * fs
                await service.submit(reader, antenna, chunk,
                                     sample_offset=shift)
            await service.drain()
            return (outcomes,
                    merge_stream_results(outcomes, trace.duration_s),
                    service.cache_stats(),
                    service.render_metrics())

    return asyncio.run(run())


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_service_decode_is_bit_identical_to_offline(capture,
                                                    decoder_config,
                                                    executor):
    """Both executors must replay the offline decode bit-identically:
    the process executor rebuilds sessions in its children from the
    same stream seeds the thread executor (and the offline path) use."""
    _, cap = capture
    trace = cap.trace
    chunk_samples = len(trace) // 3

    offline = decode_chunked(
        trace, chunk_samples,
        session=SessionDecoder(decoder_config,
                               rng=stream_seed(0, 0, 0)))
    outcomes, merged, _, _ = _stream_through_service(
        trace, decoder_config, chunk_samples=chunk_samples,
        executor=executor)

    assert all(o.status in ("ok", "degraded") for o in outcomes)
    assert digest_result(merged) == digest_result(offline)
    assert merged.n_streams > 0           # and it actually decoded tags


def test_warm_caches_hit_across_chunks(capture, decoder_config):
    _, cap = capture
    _, _, cache, page = _stream_through_service(cap.trace,
                                                decoder_config)
    # Chunks 2 and 3 of the stream must reuse chunk 1's warm state:
    # strictly positive hit counters are the acceptance criterion.
    assert cache.get("fold_hits", 0) > 0
    assert cache.get("kmeans_hits", 0) > 0
    # The stage observer exported per-stage latency series too.
    assert "lf_stage_latency_seconds_bucket" in page
    assert "lf_samples_decoded_total" in page


def test_result_merge_is_submission_order_independent(capture,
                                                      decoder_config):
    _, cap = capture
    outcomes, merged, _, _ = _stream_through_service(cap.trace,
                                                     decoder_config)
    reordered = merge_stream_results(list(reversed(outcomes)),
                                     cap.trace.duration_s)
    assert digest_result(reordered) == digest_result(merged)


def test_streams_route_to_distinct_warm_sessions(capture,
                                                 decoder_config):
    """Two readers through one service: each stream decodes through
    its own session, bit-identical to its own offline replay."""
    _, cap = capture
    trace = cap.trace
    chunk_samples = len(trace) // 2
    fs = trace.sample_rate_hz
    readers = [0, 1]

    async def run():
        per_reader = {r: [] for r in readers}
        service = DecodeService(ServiceConfig(
            n_shards=2, overflow=BLOCK, decoder=decoder_config))
        service.add_result_handler(
            lambda o: per_reader[o.frame.reader_id].append(o))
        async with service:
            # Interleave the two readers' chunk submissions.
            for chunk in chunk_trace(trace, chunk_samples):
                shift = (chunk.start_time_s - trace.start_time_s) * fs
                for reader in readers:
                    await service.submit(reader, 0, chunk,
                                         sample_offset=shift)
            await service.drain()
        return per_reader

    per_reader = asyncio.run(run())
    for reader in readers:
        offline = decode_chunked(
            trace, chunk_samples,
            session=SessionDecoder(decoder_config,
                                   rng=stream_seed(0, reader, 0)))
        merged = merge_stream_results(per_reader[reader],
                                      trace.duration_s)
        assert digest_result(merged) == digest_result(offline), \
            f"reader {reader} diverged from its offline replay"
