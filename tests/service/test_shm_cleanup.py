"""Shared-memory hygiene when a shard worker dies mid-frame.

The shard rings are backed by ``multiprocessing.shared_memory`` blocks
(files under ``/dev/shm`` on Linux).  A worker thread killed in the
middle of a decode — the chaos injector's ``ChaosWorkerKill``, or any
real non-Exception escape — must not leak the frame it was holding:
the ring region retires (``finally`` in ``_decode_frame``), the
submitter still gets a terminal ``failed`` verdict, and when the
service shuts down every backing segment is unlinked.  These tests pin
each link of that chain, ending with a filesystem-level check that no
``/dev/shm`` entry outlives the service.
"""

from __future__ import annotations

import asyncio
import os
from pathlib import Path

import numpy as np
import pytest

from repro.service import (ChaosConfig, ChaosWorkerKill, DecodeService,
                           SHED_OLDEST, ServiceConfig,
                           capture_thread_exceptions,
                           chaos_service_config)
from repro.types import EpochResult, IQTrace

_SHM_DIR = Path("/dev/shm")


def _trace(n: int = 256) -> IQTrace:
    return IQTrace(samples=np.ones(n, dtype=np.complex128),
                   sample_rate_hz=1e6)


def _shm_entries() -> set:
    if not _SHM_DIR.is_dir():
        return set()
    return {p.name for p in _SHM_DIR.iterdir()}


class _KillNthDecoder:
    """Dies with ChaosWorkerKill on the chosen call numbers."""

    def __init__(self, kill_calls):
        self.kill_calls = set(kill_calls)
        self.calls = 0

    def decode_epoch(self, trace, sample_offset=0.0):
        self.calls += 1
        if self.calls in self.kill_calls:
            raise ChaosWorkerKill("die mid-frame")
        return EpochResult(duration_s=trace.duration_s)


def _run_kill_service(n_chunks: int, kill_calls) -> tuple:
    decoder = _KillNthDecoder(kill_calls)
    # Thread executor pinned: these tests assert on the *shared*
    # decoder's call count and the worker-thread kill semantics; the
    # process-executor variants below cover the cross-process chain.
    config = ServiceConfig(
        n_shards=1, queue_depth=8, overflow=SHED_OLDEST,
        executor="thread",
        decoder_factory=lambda key, seed: decoder)
    service = DecodeService(config)
    results: list = []
    service.add_result_handler(results.append)

    async def run():
        async with service:
            for i in range(n_chunks):
                await service.submit(reader_id=0, antenna=0,
                                     trace=_trace(),
                                     sample_offset=0.0)
            await service.drain()
            # Inspect the ring while the service is still alive: the
            # dead worker's frame must already be retired.
            return [w.ring for w in service._workers]

    with capture_thread_exceptions() as escapes:
        rings = asyncio.run(run())
    return decoder, service, results, rings, escapes


def test_killed_worker_retires_its_frame_and_reports_failure():
    decoder, service, results, rings, escapes = _run_kill_service(
        6, kill_calls={2})
    stats = service.snapshot()
    assert stats.submitted == 6
    assert stats.submitted == stats.decoded + stats.failed + stats.shed
    failed = [r for r in results if r.status == "failed"]
    assert len(failed) == 1
    assert "ChaosWorkerKill" in failed[0].error
    # The dying worker retired its region: nothing is live, so the
    # ring's whole capacity is reusable.
    for ring in rings:
        assert ring.live_frames == 0
        assert ring.free_samples == ring.capacity
    assert escapes.unexpected == []


@pytest.mark.skipif(not _SHM_DIR.is_dir(),
                    reason="no /dev/shm on this platform")
def test_no_shm_segments_leak_after_worker_deaths():
    before = _shm_entries()
    decoder, service, results, rings, escapes = _run_kill_service(
        10, kill_calls={1, 4, 7})
    leaked = _shm_entries() - before
    assert not leaked, f"leaked /dev/shm segments: {sorted(leaked)}"
    stats = service.snapshot()
    assert stats.submitted == stats.decoded + stats.failed + stats.shed


@pytest.mark.skipif(not _SHM_DIR.is_dir(),
                    reason="no /dev/shm on this platform")
def test_chaos_kill_cocktail_leaves_no_shm_behind():
    before = _shm_entries()
    base = ServiceConfig(n_shards=2, queue_depth=4,
                         overflow=SHED_OLDEST,
                         executor="thread",
                         decoder_factory=lambda key, seed:
                         _KillNthDecoder(()))
    config, injector = chaos_service_config(
        base, ChaosConfig(kill_rate=0.4, seed=11))
    service = DecodeService(config)

    async def run():
        async with service:
            for i in range(30):
                await service.submit(reader_id=i % 3, antenna=0,
                                     trace=_trace(),
                                     sample_offset=0.0)
            await service.drain()

    with capture_thread_exceptions() as escapes:
        asyncio.run(run())
    assert injector.counts()["kill"] > 0
    assert escapes.unexpected == []
    leaked = _shm_entries() - before
    assert not leaked, f"leaked /dev/shm segments: {sorted(leaked)}"


# -- process executor: the same hygiene across a real process boundary --


def _run_process_chaos(n_chunks: int, chaos: ChaosConfig) -> tuple:
    """Chaos replay with ``executor="process"``; returns
    ``(service, results, injector, rings)`` captured pre-shutdown."""
    base = ServiceConfig(n_shards=2, queue_depth=8,
                         overflow=SHED_OLDEST, executor="process",
                         decoder_factory=lambda key, seed:
                         _KillNthDecoder(()))
    config, injector = chaos_service_config(base, chaos)
    service = DecodeService(config)
    results: list = []
    service.add_result_handler(results.append)

    async def run():
        async with service:
            for i in range(n_chunks):
                await service.submit(reader_id=i % 3, antenna=0,
                                     trace=_trace(),
                                     sample_offset=0.0)
            await service.drain()
            return [(w.ring.live_frames, w.ring.free_samples,
                     w.ring.capacity) for w in service._workers]

    rings = asyncio.run(run())
    return service, results, injector, rings


@pytest.mark.skipif(not _SHM_DIR.is_dir(),
                    reason="no /dev/shm on this platform")
def test_killed_child_retires_in_flight_frame_without_leaking_slot():
    """A chaos kill takes down a real child process mid-frame; the
    parent must retire the frame's ring slot, deliver the failed
    verdict, respawn the child, and keep accounting exact."""
    before = _shm_entries()
    service, results, injector, rings = _run_process_chaos(
        30, ChaosConfig(kill_rate=0.3, seed=11))
    assert injector.counts()["kill"] > 0
    stats = service.snapshot()
    assert stats.submitted == 30
    assert stats.submitted == stats.decoded + stats.failed + stats.shed
    killed = [r for r in results
              if r.error and "ChaosWorkerKill" in r.error]
    assert len(killed) == injector.counts()["kill"]
    assert all(r.status == "failed" for r in killed)
    # Pre-shutdown ring snapshot: every killed child's in-flight frame
    # was retired by the parent — no slot leaked, full capacity free.
    for live, free, capacity in rings:
        assert live == 0
        assert free == capacity
    # The parent respawned a child per kill (exposed as
    # worker_process respawns in the shared registry).
    assert 'kind="worker_process"' in service.render_metrics()
    leaked = _shm_entries() - before
    assert not leaked, f"leaked /dev/shm segments: {sorted(leaked)}"


@pytest.mark.skipif(not _SHM_DIR.is_dir(),
                    reason="no /dev/shm on this platform")
def test_process_executor_reaps_children_and_shm_on_shutdown():
    """After a clean stop no child process and no /dev/shm entry of
    the service survives."""
    import multiprocessing as mp

    before = _shm_entries()
    children_before = {p.pid for p in mp.active_children()}
    service, results, injector, _ = _run_process_chaos(
        12, ChaosConfig(crash_rate=0.2, corrupt_rate=0.2, seed=5))
    stats = service.snapshot()
    assert stats.submitted == stats.decoded + stats.failed + stats.shed
    leaked = _shm_entries() - before
    assert not leaked, f"leaked /dev/shm segments: {sorted(leaked)}"
    orphans = {p.pid for p in mp.active_children()} - children_before
    assert not orphans, f"orphaned shard children: {orphans}"
