"""Tests for framing, payload sources and offset models."""

import numpy as np
import pytest

from repro import constants
from repro.errors import ConfigurationError
from repro.tags.base import (CounterPayload, FixedOffsetModel,
                             FixedPayload, RandomPayload, TagEpochPlan,
                             UniformOffsetModel, build_frame,
                             frame_payload)


class TestFraming:
    def test_frame_structure(self):
        frame = build_frame([1, 1, 0])
        expected_preamble = [1, 0, 1, 0, 1, 0, 1, 0]
        np.testing.assert_array_equal(frame[:8], expected_preamble)
        assert frame[8] == constants.ANCHOR_BIT
        np.testing.assert_array_equal(frame[9:], [1, 1, 0])

    def test_preamble_starts_with_one(self):
        """First transmitted edge must be a rising edge (the anchor
        reference of Table 1)."""
        assert build_frame([0])[0] == 1

    def test_round_trip(self):
        payload = np.array([0, 1, 1, 0, 1], dtype=np.int8)
        np.testing.assert_array_equal(
            frame_payload(build_frame(payload)), payload)

    def test_custom_preamble_length(self):
        frame = build_frame([1], preamble_bits=4)
        assert frame.size == 4 + 1 + 1
        np.testing.assert_array_equal(frame[:4], [1, 0, 1, 0])

    def test_empty_payload_allowed(self):
        frame = build_frame(np.empty(0, dtype=np.int8))
        assert frame.size == constants.PREAMBLE_BITS + 1

    def test_short_frame_rejected(self):
        with pytest.raises(ConfigurationError):
            frame_payload([1, 0, 1])

    def test_invalid_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            build_frame([0, 2])
        with pytest.raises(ConfigurationError):
            build_frame([1], anchor_bit=3)


class TestPayloadSources:
    def test_random_payload_deterministic(self):
        a = RandomPayload(rng=3).bits(0, 32)
        b = RandomPayload(rng=3).bits(0, 32)
        np.testing.assert_array_equal(a, b)

    def test_random_payload_length(self):
        assert RandomPayload(rng=0).bits(5, 17).size == 17

    def test_fixed_payload_tiles(self):
        source = FixedPayload([1, 0, 1])
        np.testing.assert_array_equal(source.bits(0, 7),
                                      [1, 0, 1, 1, 0, 1, 1])

    def test_fixed_payload_truncates(self):
        source = FixedPayload([1, 0, 1, 1])
        np.testing.assert_array_equal(source.bits(0, 2), [1, 0])

    def test_fixed_payload_validation(self):
        with pytest.raises(ConfigurationError):
            FixedPayload([])
        with pytest.raises(ConfigurationError):
            FixedPayload([0, 2])

    def test_counter_payload_increments(self):
        source = CounterPayload(word_bits=4, start=5)
        bits = source.bits(0, 8)
        np.testing.assert_array_equal(bits, [0, 1, 0, 1, 0, 1, 1, 0])

    def test_counter_payload_wraps(self):
        source = CounterPayload(word_bits=2, start=3)
        bits = source.bits(0, 4)
        np.testing.assert_array_equal(bits, [1, 1, 0, 0])

    def test_counter_state_persists_across_calls(self):
        source = CounterPayload(word_bits=4, start=0)
        first = source.bits(0, 4)
        second = source.bits(1, 4)
        np.testing.assert_array_equal(first, [0, 0, 0, 0])
        np.testing.assert_array_equal(second, [0, 0, 0, 1])


class TestOffsetModels:
    def test_uniform_in_range(self):
        model = UniformOffsetModel(spread_s=1e-3, min_s=1e-4, rng=0)
        for _ in range(50):
            t = model.fire_time_s()
            assert 1e-4 <= t < 1.1e-3

    def test_uniform_zero_spread(self):
        model = UniformOffsetModel(spread_s=0.0, min_s=5e-4)
        assert model.fire_time_s() == 5e-4

    def test_fixed(self):
        model = FixedOffsetModel(2e-4)
        assert model.fire_time_s() == 2e-4
        assert model.fire_time_s() == 2e-4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformOffsetModel(spread_s=-1.0)
        with pytest.raises(ConfigurationError):
            FixedOffsetModel(-1e-3)


class TestTagEpochPlan:
    def test_properties(self):
        plan = TagEpochPlan(tag_id=1, bits=build_frame([1, 0]),
                            start_offset_s=1e-4, bit_period_s=1e-4,
                            nominal_bitrate_bps=10e3)
        assert plan.n_bits == 11
        assert plan.end_time_s == pytest.approx(1e-4 + 11e-4)
        np.testing.assert_array_equal(plan.payload(), [1, 0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TagEpochPlan(tag_id=0, bits=np.ones(3, dtype=np.int8),
                         start_offset_s=-1.0, bit_period_s=1e-4,
                         nominal_bitrate_bps=10e3)
