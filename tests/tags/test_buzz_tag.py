"""Tests for the Buzz lock-step tag model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tags.buzz_tag import (BuzzTag, estimation_preamble,
                                 randomization_matrix)
from repro.types import TagConfig


class TestRandomizationMatrix:
    def test_shape_and_binary(self):
        d = randomization_matrix(8, 4, seed=1)
        assert d.shape == (8, 4)
        assert set(np.unique(d)) <= {0, 1}

    def test_deterministic_in_seed(self):
        np.testing.assert_array_equal(randomization_matrix(6, 3, seed=7),
                                      randomization_matrix(6, 3, seed=7))

    def test_every_tag_and_slot_active(self):
        d = randomization_matrix(10, 5, seed=2)
        assert np.all(d.sum(axis=0) > 0)  # every tag transmits sometime
        assert np.all(d.sum(axis=1) > 0)  # every slot hears someone

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            randomization_matrix(0, 3)


class TestBuzzTag:
    def _tag(self, column):
        return BuzzTag(TagConfig(tag_id=0, channel_coefficient=0.1),
                       np.asarray(column, dtype=np.int8))

    def test_states_for_zero_bit_all_off(self):
        tag = self._tag([1, 0, 1])
        np.testing.assert_array_equal(tag.states_for_bit(0), [0, 0, 0])

    def test_states_for_one_bit_follow_column(self):
        tag = self._tag([1, 0, 1])
        np.testing.assert_array_equal(tag.states_for_bit(1), [1, 0, 1])

    def test_states_for_message_shape(self):
        tag = self._tag([1, 0, 1, 1])
        states = tag.states_for_message(np.array([1, 0, 1]))
        assert states.shape == (3, 4)
        np.testing.assert_array_equal(states[1], [0, 0, 0, 0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self._tag([0, 2])
        with pytest.raises(ConfigurationError):
            self._tag([1, 0]).states_for_bit(2)
        with pytest.raises(ConfigurationError):
            self._tag([1, 0]).states_for_message(np.array([0, 3]))


class TestEstimationPreamble:
    def test_exclusive_sounding(self):
        sched = estimation_preamble(3, repetitions=2)
        assert sched.shape == (6, 3)
        # Exactly one tag active per sounding slot.
        np.testing.assert_array_equal(sched.sum(axis=1), np.ones(6))
        # Each tag sounded exactly `repetitions` times.
        np.testing.assert_array_equal(sched.sum(axis=0), [2, 2, 2])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            estimation_preamble(0)
        with pytest.raises(ConfigurationError):
            estimation_preamble(2, repetitions=0)
