"""Tests for the laissez-faire tag."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tags.base import FixedOffsetModel, FixedPayload
from repro.tags.lf_tag import LFTag, default_offset_model
from repro.types import SimulationProfile, TagConfig

PROFILE = SimulationProfile.fast()


def make_tag(bitrate=10e3, **kwargs):
    cfg = TagConfig(tag_id=0, bitrate_bps=bitrate,
                    channel_coefficient=0.1 + 0.05j)
    return LFTag(cfg, profile=PROFILE, **kwargs)


class TestPlanEpoch:
    def test_frame_fills_epoch(self):
        tag = make_tag(rng=0)
        plan = tag.plan_epoch(0, 0.02)
        assert plan.end_time_s <= 0.02
        # The next bit would not have fit.
        assert plan.end_time_s + plan.bit_period_s > 0.02 - 1e-9

    def test_header_present(self):
        tag = make_tag(rng=1)
        plan = tag.plan_epoch(0, 0.02)
        np.testing.assert_array_equal(plan.bits[:9],
                                      [1, 0, 1, 0, 1, 0, 1, 0, 1])

    def test_offsets_vary_across_epochs(self):
        tag = make_tag(rng=2)
        offsets = {round(tag.plan_epoch(k, 0.02).start_offset_s, 9)
                   for k in range(10)}
        assert len(offsets) > 1

    def test_bit_period_reflects_drift(self):
        tag = make_tag(rng=3)
        plan = tag.plan_epoch(0, 0.02)
        nominal = 1.0 / 10e3
        assert plan.bit_period_s != nominal
        assert abs(plan.bit_period_s / nominal - 1.0) < 200e-6

    def test_fixed_payload_respected(self):
        tag = make_tag(payload_source=FixedPayload([1, 1, 0, 0]),
                       offset_model=FixedOffsetModel(1e-4), rng=4)
        plan = tag.plan_epoch(0, 0.02)
        np.testing.assert_array_equal(plan.payload()[:4], [1, 1, 0, 0])

    def test_epoch_too_short_raises(self):
        tag = make_tag(offset_model=FixedOffsetModel(0.0), rng=5)
        with pytest.raises(ConfigurationError):
            tag.plan_epoch(0, 5e-4)  # only 5 bit periods

    def test_invalid_duration(self):
        with pytest.raises(ConfigurationError):
            make_tag(rng=6).plan_epoch(0, 0.0)

    def test_bitrate_validated_against_base_rate(self):
        cfg = TagConfig(tag_id=0, bitrate_bps=10e3 + 1,
                        channel_coefficient=0.1)
        with pytest.raises(ConfigurationError):
            LFTag(cfg, profile=PROFILE)

    def test_mean_offset_added(self):
        cfg = TagConfig(tag_id=0, bitrate_bps=10e3,
                        channel_coefficient=0.1, mean_offset_s=5e-3)
        tag = LFTag(cfg, offset_model=FixedOffsetModel(1e-4),
                    profile=PROFILE)
        plan = tag.plan_epoch(0, 0.03)
        assert plan.start_offset_s == pytest.approx(5.1e-3)


class TestDefaultOffsetModel:
    def test_phase_spread_is_wide(self):
        """Fire times modulo one bit period should be spread out —
        the decoder's concurrency depends on it (Section 3.2)."""
        period = 1e-4
        phases = []
        for seed in range(120):
            model = default_offset_model(
                period, rng=np.random.default_rng(seed))
            phases.append((model.fire_time_s() % period) / period)
        # Standard deviation of a uniform phase is ~0.289.
        assert np.std(phases) > 0.2

    def test_mean_offset_moderate(self):
        """Offsets must not eat the epoch: mean well under 20 bits."""
        period = 1e-4
        fires = [default_offset_model(
            period, rng=np.random.default_rng(s)).fire_time_s()
            for s in range(60)]
        assert np.mean(fires) / period < 20
