"""Tests for the TDMA (stripped Gen 2) tag model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tags.tdma_tag import TdmaTag
from repro.types import TagConfig


def make_tag(**kwargs):
    return TdmaTag(TagConfig(tag_id=0, channel_coefficient=0.1),
                   **kwargs)


def test_sense_and_respond():
    tag = make_tag(slot_bits=8)
    tag.sense(np.arange(16) % 2)
    out = tag.respond_in_slot()
    np.testing.assert_array_equal(out, [0, 1, 0, 1, 0, 1, 0, 1])
    assert tag.buffered_bits == 8


def test_slot_wasted_when_buffer_low():
    tag = make_tag(slot_bits=96)
    tag.sense(np.ones(10, dtype=np.int8))
    assert tag.respond_in_slot() is None
    assert tag.buffered_bits == 10  # nothing consumed


def test_fifo_order_preserved():
    tag = make_tag(slot_bits=4)
    tag.sense(np.array([1, 1, 0, 0], dtype=np.int8))
    tag.sense(np.array([0, 1, 1, 1], dtype=np.int8))
    np.testing.assert_array_equal(tag.respond_in_slot(), [1, 1, 0, 0])
    np.testing.assert_array_equal(tag.respond_in_slot(), [0, 1, 1, 1])


def test_overflow_drops_and_counts():
    """A bounded sensor buffer drops oldest bits — the cost TDMA tags
    pay for waiting between slots (Section 2.1)."""
    tag = make_tag(slot_bits=8, buffer_capacity_bits=8)
    tag.sense(np.zeros(8, dtype=np.int8))
    tag.sense(np.ones(4, dtype=np.int8))
    assert tag.dropped_bits == 4
    assert tag.buffered_bits == 8
    out = tag.respond_in_slot()
    # The oldest 4 zeros were dropped.
    np.testing.assert_array_equal(out, [0, 0, 0, 0, 1, 1, 1, 1])


def test_make_identifier():
    tag = make_tag(rng=1)
    ident = tag.make_identifier(96)
    assert ident.size == 96
    assert set(np.unique(ident)) <= {0, 1}


def test_validation():
    with pytest.raises(ConfigurationError):
        make_tag(slot_bits=0)
    with pytest.raises(ConfigurationError):
        make_tag(slot_bits=96, buffer_capacity_bits=10)
    with pytest.raises(ConfigurationError):
        make_tag().sense(np.array([0, 5]))
    with pytest.raises(ConfigurationError):
        make_tag().make_identifier(0)
