"""Tests for the ``python -m repro`` command-line interface."""

import json

import numpy as np
import pytest

from repro.__main__ import build_parser, main
from repro.types import IQTrace
from repro.utils.serialization import save_trace

from .conftest import build_network


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in ("fig8", "table3", "sec54", "ablation_drift"):
            assert key in out


class TestRun:
    def test_run_static_experiment(self, capsys):
        assert main(["run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "22704" in out

    def test_run_with_save(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert main(["run", "sec54", "--save", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["experiment_id"] == "sec54"
        assert len(data["rows"]) >= 2

    def test_unknown_experiment_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonsense"])


class TestDecode:
    def test_decode_saved_capture(self, tmp_path, capsys,
                                  fast_profile):
        sim = build_network(2, fast_profile, seed=31)
        capture = sim.run_epoch(0.01)
        path = save_trace(capture.trace, tmp_path / "epoch.npz")
        assert main(["decode", str(path),
                     "--bitrates", "10000"]) == 0
        out = capsys.readouterr().out
        assert "stream(s) decoded" in out
        # Both genuine tags appear as full-confidence streams (an
        # occasional low-confidence fragment may tag along; real
        # deployments CRC-filter those).
        assert out.count("confidence 1.00") >= 2
        assert "payload" in out

    def test_decode_missing_file_errors(self):
        with pytest.raises(FileNotFoundError):
            main(["decode", "/nonexistent.npz",
                  "--bitrates", "10000"])

    def test_decode_garbage_trace_is_handled(self, tmp_path, capsys):
        trace = IQTrace(samples=np.full(30_000, 0.5 + 0.3j),
                        sample_rate_hz=2.5e6)
        path = save_trace(trace, tmp_path / "quiet.npz")
        assert main(["decode", str(path),
                     "--bitrates", "10000"]) == 0
        out = capsys.readouterr().out
        assert "0 stream(s) decoded" in out


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
