"""Tests for shared constants and derived helpers."""

import pytest

from repro import constants


def test_paper_reference_point():
    """25 Msps at 100 kbps is 250 samples per bit (Section 2.4)."""
    assert constants.samples_per_bit(
        constants.DEFAULT_BITRATE_BPS,
        constants.READER_SAMPLE_RATE_HZ) == 250


def test_edge_packing_headroom():
    """250/3 ~ 83 edges can stack per bit period (Section 2.4)."""
    per_bit = constants.samples_per_bit(100e3, 25e6)
    assert int(per_bit // constants.EDGE_WIDTH_SAMPLES) == 83


def test_base_rate_divides_default():
    assert constants.DEFAULT_BITRATE_BPS % constants.BASE_RATE_BPS == 0


def test_samples_per_bit_validation():
    with pytest.raises(ValueError):
        constants.samples_per_bit(0.0)
    with pytest.raises(ValueError):
        constants.samples_per_bit(100.0, -1.0)


def test_drift_budget_ordering():
    """Typical crystal drift must sit inside the tolerated budget."""
    assert constants.DEFAULT_CLOCK_DRIFT_PPM < \
        constants.MAX_TOLERATED_DRIFT_PPM


def test_epc_frame_sizes():
    assert constants.EPC_ID_BITS == 96
    assert constants.EPC_CRC_BITS == 5
    assert constants.TDMA_SLOT_BITS == 96
