"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (ChannelEstimationError,
                          CollisionUnresolvableError, ConfigurationError,
                          DecodeError, HardwareModelError, ReproError,
                          SignalError)


def test_all_derive_from_repro_error():
    for exc in (ConfigurationError, SignalError, DecodeError,
                CollisionUnresolvableError, ChannelEstimationError,
                HardwareModelError):
        assert issubclass(exc, ReproError)


def test_configuration_error_is_value_error():
    """Callers using stdlib conventions still catch bad arguments."""
    assert issubclass(ConfigurationError, ValueError)


def test_collision_unresolvable_carries_count():
    err = CollisionUnresolvableError(3)
    assert err.n_colliders == 3
    assert "3-way" in str(err)


def test_collision_unresolvable_custom_message():
    err = CollisionUnresolvableError(2, "parallel vectors")
    assert str(err) == "parallel vectors"


def test_collision_unresolvable_is_decode_error():
    with pytest.raises(DecodeError):
        raise CollisionUnresolvableError(4)
