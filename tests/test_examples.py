"""Smoke tests: every example script imports and the fast ones run."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))
FAST_EXAMPLES = ["quickstart", "sensor_network", "record_and_replay"]


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_expected_examples_present():
    assert set(FAST_EXAMPLES) <= set(ALL_EXAMPLES)
    assert len(ALL_EXAMPLES) >= 6


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_imports_and_has_main(name):
    module = load_example(name)
    assert callable(getattr(module, "main", None))


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip()  # produced some report
