"""Tests for the core datatypes."""

import numpy as np
import pytest

from repro import constants
from repro.errors import ConfigurationError, SignalError
from repro.types import (DecodedStream, DetectedEdge, EpochResult,
                         IQTrace, SimulationProfile, StreamHypothesis,
                         TagConfig, ThroughputReport, bits_from_string,
                         bits_to_string)


class TestSimulationProfile:
    def test_paper_matches_constants(self):
        profile = SimulationProfile.paper()
        assert profile.sample_rate_hz == constants.READER_SAMPLE_RATE_HZ
        assert profile.default_bitrate_bps == \
            constants.DEFAULT_BITRATE_BPS

    def test_fast_preserves_oversampling_ratio(self):
        fast = SimulationProfile.fast()
        paper = SimulationProfile.paper()
        assert fast.samples_per_bit() == paper.samples_per_bit() == 250

    def test_samples_per_bit_explicit_rate(self):
        assert SimulationProfile.paper().samples_per_bit(250e3) == 100

    def test_validate_bitrate_accepts_multiples(self):
        profile = SimulationProfile.fast()
        profile.validate_bitrate(10e3)
        profile.validate_bitrate(50.0)  # 5 x base rate of 10

    def test_validate_bitrate_rejects_non_multiples(self):
        profile = SimulationProfile.fast()
        with pytest.raises(ConfigurationError):
            profile.validate_bitrate(10e3 + 3.0)

    def test_validate_bitrate_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            SimulationProfile.fast().validate_bitrate(0.0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            SimulationProfile(sample_rate_hz=-1)
        with pytest.raises(ConfigurationError):
            SimulationProfile(base_rate_bps=0)
        with pytest.raises(ConfigurationError):
            SimulationProfile(edge_width_samples=0)


class TestIQTrace:
    def test_construction_and_properties(self):
        samples = np.array([1 + 1j, 2 + 0j, 0 + 3j])
        trace = IQTrace(samples=samples, sample_rate_hz=100.0)
        assert len(trace) == 3
        assert trace.duration_s == pytest.approx(0.03)
        np.testing.assert_allclose(trace.i, [1, 2, 0])
        np.testing.assert_allclose(trace.q, [1, 0, 3])

    def test_real_input_promoted_to_complex(self):
        trace = IQTrace(samples=np.array([1.0, 2.0]),
                        sample_rate_hz=10.0)
        assert np.iscomplexobj(trace.samples)

    def test_time_axis_respects_start(self):
        trace = IQTrace(samples=np.ones(4, dtype=complex),
                        sample_rate_hz=2.0, start_time_s=1.0)
        np.testing.assert_allclose(trace.time_axis(),
                                   [1.0, 1.5, 2.0, 2.5])

    def test_slice(self):
        trace = IQTrace(samples=np.arange(10, dtype=complex),
                        sample_rate_hz=10.0)
        sub = trace.slice(2, 5)
        assert len(sub) == 3
        assert sub.start_time_s == pytest.approx(0.2)
        np.testing.assert_allclose(sub.samples.real, [2, 3, 4])

    def test_slice_bounds_checked(self):
        trace = IQTrace(samples=np.ones(4, dtype=complex),
                        sample_rate_hz=1.0)
        with pytest.raises(SignalError):
            trace.slice(2, 10)
        with pytest.raises(SignalError):
            trace.slice(3, 3)

    def test_rejects_empty_and_2d(self):
        with pytest.raises(SignalError):
            IQTrace(samples=np.empty(0), sample_rate_hz=1.0)
        with pytest.raises(SignalError):
            IQTrace(samples=np.ones((2, 2)), sample_rate_hz=1.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(SignalError):
            IQTrace(samples=np.ones(3), sample_rate_hz=0.0)


class TestTagConfig:
    def test_defaults(self):
        cfg = TagConfig(tag_id=3)
        assert cfg.bitrate_bps == constants.DEFAULT_BITRATE_BPS
        assert cfg.clock_drift_ppm == \
            constants.DEFAULT_CLOCK_DRIFT_PPM

    def test_with_coefficient(self):
        cfg = TagConfig(tag_id=0)
        new = cfg.with_coefficient(0.3 + 0.1j)
        assert new.channel_coefficient == 0.3 + 0.1j
        assert new.tag_id == cfg.tag_id
        assert cfg.channel_coefficient != new.channel_coefficient

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TagConfig(tag_id=-1)
        with pytest.raises(ConfigurationError):
            TagConfig(tag_id=0, bitrate_bps=0)
        with pytest.raises(ConfigurationError):
            TagConfig(tag_id=0, channel_coefficient=0j)
        with pytest.raises(ConfigurationError):
            TagConfig(tag_id=0, clock_drift_ppm=-5)


class TestDetectedEdge:
    def test_strength_defaults_to_magnitude(self):
        edge = DetectedEdge(position=5, differential=3 + 4j)
        assert edge.strength == pytest.approx(5.0)

    def test_negative_position_rejected(self):
        with pytest.raises(SignalError):
            DetectedEdge(position=-1, differential=1j)


class TestStreamHypothesis:
    def test_grid_positions(self):
        hyp = StreamHypothesis(offset_samples=10.0, period_samples=25.0)
        grid = hyp.grid_positions(100)
        np.testing.assert_allclose(grid, [10, 35, 60, 85])

    def test_grid_positions_empty_when_offset_past_end(self):
        hyp = StreamHypothesis(offset_samples=99.0,
                               period_samples=1000.0)
        assert hyp.grid_positions(50).size == 0

    def test_validation(self):
        with pytest.raises(SignalError):
            StreamHypothesis(offset_samples=-1.0, period_samples=10.0)
        with pytest.raises(SignalError):
            StreamHypothesis(offset_samples=0.0, period_samples=0.0)


class TestDecodedStream:
    def _stream(self, bits) -> DecodedStream:
        return DecodedStream(bits=np.asarray(bits, dtype=np.int8),
                             offset_samples=0.0, period_samples=250.0,
                             bitrate_bps=10e3)

    def test_payload_strips_header(self):
        bits = [1, 0, 1, 0, 1, 0, 1, 0, 1, 1, 1, 0]
        stream = self._stream(bits)
        np.testing.assert_array_equal(stream.payload_bits(), [1, 1, 0])

    def test_rejects_non_binary(self):
        with pytest.raises(SignalError):
            self._stream([0, 1, 2])

    def test_n_bits(self):
        assert self._stream([1, 0, 1]).n_bits == 3


class TestEpochResult:
    def test_stream_lookup_and_totals(self):
        streams = [
            DecodedStream(bits=np.ones(12, dtype=np.int8),
                          offset_samples=0, period_samples=250,
                          bitrate_bps=10e3, tag_id=7),
            DecodedStream(bits=np.zeros(15, dtype=np.int8),
                          offset_samples=10, period_samples=250,
                          bitrate_bps=10e3, tag_id=2),
        ]
        result = EpochResult(streams=streams)
        assert result.n_streams == 2
        assert result.stream_by_tag(7) is streams[0]
        assert result.stream_by_tag(99) is None
        # payload = bits minus 9-bit header for each stream
        assert result.total_payload_bits() == (12 - 9) + (15 - 9)


class TestThroughputReport:
    def test_throughput_and_goodput(self):
        report = ThroughputReport(scheme="lf", n_tags=2,
                                  bits_correct=500, bits_sent=1000,
                                  elapsed_s=0.5)
        assert report.throughput_bps == pytest.approx(1000.0)
        assert report.goodput_fraction == pytest.approx(0.5)

    def test_degenerate_cases(self):
        report = ThroughputReport(scheme="lf", n_tags=1,
                                  bits_correct=0, bits_sent=0,
                                  elapsed_s=0.0)
        assert report.throughput_bps == 0.0
        assert report.goodput_fraction == 0.0


class TestBitStrings:
    def test_round_trip(self):
        bits = bits_from_string("10110")
        np.testing.assert_array_equal(bits, [1, 0, 1, 1, 0])
        assert bits_to_string(bits) == "10110"

    def test_invalid_characters(self):
        with pytest.raises(ConfigurationError):
            bits_from_string("10x1")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bits_from_string("")

    def test_to_string_validates(self):
        with pytest.raises(ConfigurationError):
            bits_to_string([0, 2])


class TestIQTraceFiniteness:
    def test_nan_rejected(self):
        samples = np.ones(10, dtype=complex)
        samples[3] = np.nan
        with pytest.raises(SignalError):
            IQTrace(samples=samples, sample_rate_hz=1.0)

    def test_inf_rejected(self):
        samples = np.ones(10, dtype=complex)
        samples[3] = 1j * np.inf
        with pytest.raises(SignalError):
            IQTrace(samples=samples, sample_rate_hz=1.0)
