"""The service section of the benchmark regression gate.

Exercises ``benchmarks/check_regression.py::check_service`` directly
against synthetic soak exports: pass/fail on the throughput floor,
the shed-fraction ceiling, the exact-accounting invariant, and the
warn-only path when no service baseline is committed yet.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    REPO_ROOT / "benchmarks" / "check_regression.py")
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


def _export(sustained=400_000.0, shed_fraction=0.5,
            accounting=True, shed_in_throughput=0,
            with_overload=True) -> dict:
    payload = {
        "throughput": {
            "sustained_samples_per_second": sustained,
            "shed": shed_in_throughput,
            "accounting_exact": accounting,
        },
    }
    if with_overload:
        payload["overload"] = {
            "shed_fraction": shed_fraction,
            "accounting_exact": accounting,
        }
    return payload


def _write(tmp_path: Path, name: str, payload: dict) -> Path:
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


def _gate(tmp_path, candidate, baseline=None, tolerance=0.2,
          shed_ceiling=0.75) -> int:
    candidate_path = _write(tmp_path, "candidate.json", candidate)
    if baseline is None:
        baseline_path = tmp_path / "missing_baseline.json"
    else:
        baseline_path = _write(tmp_path, "baseline.json", baseline)
    return check_regression.check_service(
        candidate_path, baseline_path, tolerance, shed_ceiling)


def test_passes_when_candidate_clears_the_floor(tmp_path):
    assert _gate(tmp_path, _export(sustained=390_000),
                 baseline=_export(sustained=400_000)) == 0


def test_fails_when_throughput_regresses_past_tolerance(tmp_path):
    assert _gate(tmp_path, _export(sustained=300_000),
                 baseline=_export(sustained=400_000)) == 1


def test_missing_baseline_is_informational_not_failing(tmp_path):
    assert _gate(tmp_path, _export(sustained=100.0)) == 0


def test_missing_candidate_is_skipped(tmp_path):
    assert check_regression.check_service(
        tmp_path / "nope.json", tmp_path / "nope2.json",
        0.2, 0.75) == 0


def test_fails_on_shed_fraction_above_ceiling(tmp_path):
    assert _gate(tmp_path, _export(shed_fraction=0.9)) == 1


def test_fails_on_broken_accounting(tmp_path):
    assert _gate(tmp_path, _export(accounting=False),
                 baseline=_export()) == 1


def test_fails_when_closed_loop_phase_shed(tmp_path):
    assert _gate(tmp_path, _export(shed_in_throughput=3),
                 baseline=_export()) == 1


def test_fails_on_unreadable_export(tmp_path):
    bad = tmp_path / "candidate.json"
    bad.write_text("{not json")
    assert check_regression.check_service(
        bad, tmp_path / "baseline.json", 0.2, 0.75) == 1


def test_overload_phase_is_optional(tmp_path):
    # A --no-overload soak still gates on throughput alone.
    assert _gate(tmp_path, _export(with_overload=False),
                 baseline=_export(with_overload=False)) == 0


def test_committed_baseline_matches_gate_schema():
    """The baseline this repo ships must satisfy its own gate."""
    baseline = REPO_ROOT / "benchmarks" / "BENCH_service.json"
    assert baseline.exists()
    assert check_regression.check_service(
        baseline, baseline, 0.2, 0.75) == 0


def test_cli_wires_service_gate(tmp_path):
    # End-to-end through main(): decoder candidate from the committed
    # export, service candidate from a synthetic one.
    candidate = _write(tmp_path, "svc.json", _export())
    baseline = _write(tmp_path, "svc_base.json", _export())
    rc = check_regression.main([
        "--candidate",
        str(REPO_ROOT / "benchmarks" / "BENCH_decoder.json"),
        "--service-candidate", str(candidate),
        "--service-baseline", str(baseline)])
    assert rc == 0
