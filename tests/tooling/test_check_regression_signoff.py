"""The signoff section of the benchmark regression gate.

Exercises ``benchmarks/check_regression.py::check_signoff`` against
synthetic signoff exports: waterfall monotonicity, gap direction, the
tuner never-worse invariant, per-cell comparison against a committed
baseline, and the informational paths when either file is missing.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    REPO_ROOT / "benchmarks" / "check_regression.py")
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


def _export(lf_bers=(0.2, 0.05, 0.0), ask_bers=(0.08, 0.01, 0.0),
            goodput=0.9, opening=0.8, tuned_best=110.0,
            tuned_baseline=100.0) -> dict:
    snrs = [6.0, 10.0, 14.0]
    return {
        "schema": 1,
        "quick": True,
        "waterfall": {
            "rows": [{"snr_db": s, "lf_ber": lf, "ask_ber": ask,
                      "bits_measured": 400}
                     for s, lf, ask in zip(snrs, lf_bers, ask_bers)],
            "snr_gap_db": 4.2,
        },
        "capacity": {"rows": [{"snr_db": 8.0, "n_tags": 2,
                               "drift_ppm": 150.0,
                               "goodput_fraction": goodput,
                               "decoded_bps_x": 1.8,
                               "offered_bps_x": 2.0}]},
        "eye": {"clean": {"tags": [],
                          "summary": {"min_opening": opening}}},
        "autotune": {"low_snr": {"baseline_score": tuned_baseline,
                                 "best_score": tuned_best,
                                 "improved":
                                     tuned_best > tuned_baseline}},
    }


def _write(tmp_path: Path, name: str, payload: dict) -> Path:
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestCheckSignoff:
    def test_healthy_export_passes(self, tmp_path):
        candidate = _write(tmp_path, "cand.json", _export())
        baseline = _write(tmp_path, "base.json", _export())
        assert check_regression.check_signoff(candidate, baseline,
                                              0.1) == 0

    def test_missing_candidate_skips(self, tmp_path):
        baseline = _write(tmp_path, "base.json", _export())
        assert check_regression.check_signoff(
            tmp_path / "nope.json", baseline, 0.1) == 0

    def test_missing_baseline_is_informational(self, tmp_path):
        candidate = _write(tmp_path, "cand.json", _export())
        assert check_regression.check_signoff(
            candidate, tmp_path / "nope.json", 0.1) == 0

    def test_unreadable_candidate_fails(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        baseline = _write(tmp_path, "base.json", _export())
        assert check_regression.check_signoff(bad, baseline, 0.1) == 1

    def test_non_monotone_waterfall_fails(self, tmp_path):
        candidate = _write(tmp_path, "cand.json",
                           _export(lf_bers=(0.05, 0.2, 0.0)))
        baseline = _write(tmp_path, "base.json", _export())
        assert check_regression.check_signoff(candidate, baseline,
                                              0.1) == 1

    def test_counting_noise_within_slack_passes(self, tmp_path):
        slack = check_regression.WATERFALL_SLACK
        candidate = _write(
            tmp_path, "cand.json",
            _export(lf_bers=(0.2, 0.05, 0.05 + slack / 2)))
        baseline = _write(tmp_path, "base.json", _export())
        assert check_regression.check_signoff(candidate, baseline,
                                              0.1) == 0

    def test_flipped_gap_direction_fails(self, tmp_path):
        candidate = _write(tmp_path, "cand.json",
                           _export(lf_bers=(0.01, 0.005, 0.0),
                                   ask_bers=(0.3, 0.2, 0.1)))
        baseline = _write(tmp_path, "base.json", _export())
        assert check_regression.check_signoff(candidate, baseline,
                                              0.1) == 1

    def test_tuner_below_stock_fails(self, tmp_path):
        candidate = _write(tmp_path, "cand.json",
                           _export(tuned_best=90.0))
        baseline = _write(tmp_path, "base.json", _export())
        assert check_regression.check_signoff(candidate, baseline,
                                              0.1) == 1

    def test_capacity_cell_regression_fails(self, tmp_path):
        candidate = _write(tmp_path, "cand.json",
                           _export(goodput=0.5))
        baseline = _write(tmp_path, "base.json", _export(goodput=0.9))
        assert check_regression.check_signoff(candidate, baseline,
                                              0.1) == 1

    def test_capacity_drop_within_tolerance_passes(self, tmp_path):
        candidate = _write(tmp_path, "cand.json",
                           _export(goodput=0.85))
        baseline = _write(tmp_path, "base.json", _export(goodput=0.9))
        assert check_regression.check_signoff(candidate, baseline,
                                              0.1) == 0

    def test_eye_opening_regression_fails(self, tmp_path):
        candidate = _write(tmp_path, "cand.json",
                           _export(opening=0.5))
        baseline = _write(tmp_path, "base.json", _export(opening=0.8))
        assert check_regression.check_signoff(candidate, baseline,
                                              0.1) == 1

    def test_disjoint_grids_are_informational(self, tmp_path):
        other = _export()
        other["capacity"]["rows"][0]["snr_db"] = 99.0
        other["eye"] = {}
        candidate = _write(tmp_path, "cand.json", other)
        baseline = _write(tmp_path, "base.json", _export())
        # Eye cell overlaps nothing, capacity coords differ: no
        # comparisons, but shape invariants still hold -> pass.
        assert check_regression.check_signoff(candidate, baseline,
                                              0.1) == 0

    def test_committed_baseline_matches_current_schema(self):
        """The committed quick baseline stays gateable."""
        baseline = REPO_ROOT / "benchmarks" / "SIGNOFF_quick.json"
        assert baseline.exists()
        assert check_regression.check_signoff(baseline, baseline,
                                              0.0) == 0
