"""The decode path's import graph stays acyclic and layered."""

import importlib.util
from pathlib import Path

_TOOL = Path(__file__).resolve().parents[2] / "tools" \
    / "check_import_cycles.py"
_spec = importlib.util.spec_from_file_location("check_import_cycles",
                                               _TOOL)
_tool = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_tool)


class TestImportGraph:
    def test_no_runtime_cycles_or_forbidden_edges(self):
        assert _tool.check() == []

    def test_stats_layer_sits_at_the_bottom(self):
        graph = _tool.build_graph()
        assert graph["repro.core.stages.stats"] <= {
            "repro.types", "repro.utils.timing"}

    def test_session_does_not_import_pipeline_at_module_scope(self):
        graph = _tool.build_graph()
        assert "repro.core.pipeline" \
            not in graph["repro.core.session"]

    def test_stage_modules_do_not_import_upper_layers(self):
        graph = _tool.build_graph()
        upper = {"repro.core.pipeline", "repro.core.session",
                 "repro.core.session_decoder", "repro.core.engine"}
        for module, edges in graph.items():
            if module.startswith("repro.core.stages"):
                assert not (edges & upper), (module, edges & upper)

    def test_detector_catches_a_synthetic_cycle(self):
        cycles = _tool.find_cycles({
            "a": {"b"}, "b": {"c"}, "c": {"a"}, "d": {"a"}})
        assert cycles == [["a", "b", "c"]]

    def test_type_checking_blocks_are_skipped(self):
        graph = _tool.build_graph()
        # context.py references session/fidelity types under
        # TYPE_CHECKING only; those edges must not appear.
        assert "repro.core.session" \
            not in graph["repro.core.stages.context"]
