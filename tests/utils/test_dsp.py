"""Tests for the DSP building blocks."""

import numpy as np
import pytest

from repro.utils.dsp import (bits_from_levels, edge_positions_from_bits,
                             find_peaks_above, fold_positions,
                             moving_average, nrz_levels_from_bits,
                             windowed_means)


class TestMovingAverage:
    def test_identity_window(self):
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(moving_average(x, 1), x)

    def test_constant_signal_unchanged(self):
        x = np.full(20, 3.5)
        np.testing.assert_allclose(moving_average(x, 5), x)

    def test_length_preserved(self):
        x = np.random.default_rng(0).normal(size=37)
        assert moving_average(x, 6).shape == x.shape

    def test_complex_input(self):
        x = np.array([1 + 1j, 1 + 1j, 1 + 1j, 1 + 1j])
        np.testing.assert_allclose(moving_average(x, 2), x)

    def test_smooths_step(self):
        x = np.concatenate([np.zeros(10), np.ones(10)])
        smoothed = moving_average(x, 4)
        assert 0 < smoothed[10] < 1

    def test_window_larger_than_signal_clipped(self):
        x = np.array([1.0, 3.0])
        out = moving_average(x, 10)
        assert out.shape == x.shape

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average(np.ones(5), 0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            moving_average(np.ones((3, 3)), 2)


class TestWindowedMeans:
    def test_step_signal(self):
        signal = np.concatenate([np.zeros(50), np.ones(50)])
        before, after = windowed_means(signal, np.array([50]),
                                       pre_window=10, post_window=10,
                                       guard=2)
        assert before[0] == pytest.approx(0.0)
        assert after[0] == pytest.approx(1.0)

    def test_guard_excludes_transition(self):
        signal = np.concatenate([np.zeros(50), [0.5], np.ones(49)])
        before, after = windowed_means(signal, np.array([50]),
                                       pre_window=5, post_window=5,
                                       guard=1)
        assert after[0] == pytest.approx(1.0)

    def test_edge_of_trace_falls_back(self):
        signal = np.ones(20)
        before, after = windowed_means(signal, np.array([0, 19]),
                                       pre_window=5, post_window=5,
                                       guard=1)
        assert np.all(np.isfinite(before))
        assert np.all(np.isfinite(after))

    def test_complex_signal(self):
        signal = np.concatenate([np.zeros(30),
                                 np.full(30, 1 + 2j)])
        before, after = windowed_means(signal, np.array([30]),
                                       pre_window=8, post_window=8,
                                       guard=1)
        assert after[0] - before[0] == pytest.approx(1 + 2j)

    def test_validation(self):
        with pytest.raises(ValueError):
            windowed_means(np.ones(10), np.array([5]), 0, 5, 1)
        with pytest.raises(ValueError):
            windowed_means(np.ones(10), np.array([5]), 5, 5, -1)


class TestFindPeaksAbove:
    def test_single_peak(self):
        x = np.zeros(50)
        x[20] = 10.0
        peaks = find_peaks_above(x, 5.0, 3)
        np.testing.assert_array_equal(peaks, [20])

    def test_suppression_keeps_strongest(self):
        x = np.zeros(50)
        x[20] = 10.0
        x[22] = 8.0  # within suppression radius of the stronger peak
        peaks = find_peaks_above(x, 5.0, 3)
        np.testing.assert_array_equal(peaks, [20])

    def test_separated_peaks_both_found(self):
        x = np.zeros(50)
        x[10] = 10.0
        x[30] = 9.0
        peaks = find_peaks_above(x, 5.0, 3)
        np.testing.assert_array_equal(peaks, [10, 30])

    def test_nothing_above_threshold(self):
        assert find_peaks_above(np.zeros(10), 1.0, 2).size == 0

    def test_results_sorted(self):
        x = np.zeros(100)
        x[[80, 10, 40]] = [5, 6, 7]
        peaks = find_peaks_above(x, 1.0, 3)
        assert list(peaks) == sorted(peaks)

    def test_invalid_separation(self):
        with pytest.raises(ValueError):
            find_peaks_above(np.ones(5), 0.5, 0)


class TestFoldPositions:
    def test_periodic_positions_fold_into_one_bin(self):
        positions = 7.0 + 50.0 * np.arange(20)
        counts = fold_positions(positions, 50.0, 50)
        assert counts.max() == 20
        assert np.count_nonzero(counts) == 1

    def test_uniform_positions_spread(self):
        rng = np.random.default_rng(3)
        positions = rng.uniform(0, 5000, 1000)
        counts = fold_positions(positions, 50.0, 10)
        assert counts.min() > 0  # roughly uniform occupancy

    def test_validation(self):
        with pytest.raises(ValueError):
            fold_positions(np.array([1.0]), 0.0, 5)
        with pytest.raises(ValueError):
            fold_positions(np.array([1.0]), 10.0, 0)


class TestNrzHelpers:
    def test_levels_round_trip(self):
        bits = np.array([1, 0, 1, 1, 0], dtype=np.int8)
        levels = nrz_levels_from_bits(bits)
        np.testing.assert_array_equal(bits_from_levels(levels), bits)

    def test_levels_reject_non_binary(self):
        with pytest.raises(ValueError):
            nrz_levels_from_bits(np.array([0, 3]))

    def test_threshold(self):
        levels = np.array([0.2, 0.7, 0.4, 0.9])
        np.testing.assert_array_equal(bits_from_levels(levels),
                                      [0, 1, 0, 1])


class TestEdgePositionsFromBits:
    def test_alternating_bits_toggle_every_boundary(self):
        positions = edge_positions_from_bits([1, 0, 1, 0], offset=10.0,
                                             period=5.0)
        np.testing.assert_allclose(positions, [10, 15, 20, 25])

    def test_constant_bits_single_initial_edge(self):
        positions = edge_positions_from_bits([1, 1, 1], offset=0.0,
                                             period=4.0)
        np.testing.assert_allclose(positions, [0.0])

    def test_all_zero_no_edges(self):
        positions = edge_positions_from_bits([0, 0, 0], offset=0.0,
                                             period=4.0)
        assert positions.size == 0

    def test_initial_state_high(self):
        positions = edge_positions_from_bits([1, 0], offset=0.0,
                                             period=3.0,
                                             initial_state=1)
        np.testing.assert_allclose(positions, [3.0])
