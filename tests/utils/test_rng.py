"""Tests for RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import make_rng, spawn_rngs


def test_make_rng_from_int_is_deterministic():
    a = make_rng(42).integers(0, 1000, 10)
    b = make_rng(42).integers(0, 1000, 10)
    np.testing.assert_array_equal(a, b)


def test_make_rng_passthrough():
    gen = np.random.default_rng(1)
    assert make_rng(gen) is gen


def test_make_rng_none_gives_generator():
    assert isinstance(make_rng(None), np.random.Generator)


def test_spawn_rngs_independent_and_deterministic():
    children_a = spawn_rngs(7, 3)
    children_b = spawn_rngs(7, 3)
    for a, b in zip(children_a, children_b):
        np.testing.assert_array_equal(a.integers(0, 100, 5),
                                      b.integers(0, 100, 5))


def test_spawn_rngs_children_differ():
    a, b = spawn_rngs(0, 2)
    assert not np.array_equal(a.integers(0, 10 ** 9, 8),
                              b.integers(0, 10 ** 9, 8))


def test_spawn_rngs_zero():
    assert spawn_rngs(0, 0) == []


def test_spawn_rngs_negative_rejected():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)
