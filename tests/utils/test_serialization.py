"""Tests for trace and result persistence."""

import numpy as np
import pytest

from repro.errors import SignalError
from repro.types import IQTrace
from repro.utils.serialization import (load_results, load_trace,
                                       save_results, save_trace)


class TestTraceRoundTrip:
    def test_round_trip(self, tmp_path):
        samples = (np.random.default_rng(0).normal(size=100)
                   + 1j * np.random.default_rng(1).normal(size=100))
        trace = IQTrace(samples=samples, sample_rate_hz=2.5e6,
                        start_time_s=0.25)
        path = save_trace(trace, tmp_path / "capture.npz")
        loaded = load_trace(path)
        np.testing.assert_array_equal(loaded.samples, trace.samples)
        assert loaded.sample_rate_hz == trace.sample_rate_hz
        assert loaded.start_time_s == trace.start_time_s

    def test_extension_appended(self, tmp_path):
        trace = IQTrace(samples=np.ones(4, dtype=complex),
                        sample_rate_hz=1.0)
        path = save_trace(trace, tmp_path / "raw")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_missing_fields_detected(self, tmp_path):
        bad = tmp_path / "bad.npz"
        np.savez(bad, samples=np.ones(3, dtype=complex))
        with pytest.raises(SignalError):
            load_trace(bad)

    def test_newer_version_rejected(self, tmp_path):
        bad = tmp_path / "future.npz"
        np.savez(bad, version=np.int64(99),
                 samples=np.ones(3, dtype=complex),
                 sample_rate_hz=np.float64(1.0))
        with pytest.raises(SignalError):
            load_trace(bad)

    def test_creates_parent_directories(self, tmp_path):
        trace = IQTrace(samples=np.ones(2, dtype=complex),
                        sample_rate_hz=1.0)
        path = save_trace(trace, tmp_path / "a" / "b" / "t.npz")
        assert path.exists()


class TestResultsRoundTrip:
    def test_plain_dict(self, tmp_path):
        data = {"throughput": 123.4, "n_tags": 16, "ok": True}
        path = save_results(data, tmp_path / "results.json")
        assert load_results(path) == data

    def test_numpy_values_converted(self, tmp_path):
        data = {"arr": np.array([1, 2, 3]),
                "scalar": np.float64(2.5),
                "count": np.int64(7)}
        path = save_results(data, tmp_path / "np.json")
        loaded = load_results(path)
        assert loaded["arr"] == [1, 2, 3]
        assert loaded["scalar"] == 2.5
        assert loaded["count"] == 7

    def test_complex_round_trip(self, tmp_path):
        data = {"coefficient": 0.1 + 0.2j}
        path = save_results(data, tmp_path / "cx.json")
        assert load_results(path)["coefficient"] == 0.1 + 0.2j
