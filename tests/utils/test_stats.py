"""Tests for statistics helpers."""

import math

import numpy as np
import pytest

from repro.utils.stats import (Gaussian2D, ber_from_bits, db_to_linear,
                               fit_gaussian_2d, linear_to_db,
                               wilson_interval)


class TestGaussian2D:
    def test_log_pdf_peaks_at_mean(self):
        g = Gaussian2D(mu_i=1.0, mu_q=-1.0, sigma_i=0.5, sigma_q=0.5)
        at_mean = g.log_pdf(np.array([1 - 1j]))[0]
        away = g.log_pdf(np.array([2 + 0j]))[0]
        assert at_mean > away

    def test_log_pdf_normalization_sane(self):
        """Numerically integrate the density over a grid ~ 1."""
        g = Gaussian2D(0.0, 0.0, 1.0, 1.0, rho=0.3)
        xs = np.linspace(-6, 6, 201)
        grid = xs[:, None] + 1j * xs[None, :]
        density = np.exp(g.log_pdf(grid.ravel()))
        integral = density.sum() * (xs[1] - xs[0]) ** 2
        assert integral == pytest.approx(1.0, abs=0.01)

    def test_mean_property(self):
        assert Gaussian2D(2.0, 3.0, 1.0, 1.0).mean == 2 + 3j

    def test_validation(self):
        with pytest.raises(ValueError):
            Gaussian2D(0, 0, 0.0, 1.0)
        with pytest.raises(ValueError):
            Gaussian2D(0, 0, 1.0, 1.0, rho=1.0)


class TestFitGaussian2D:
    def test_recovers_parameters(self):
        rng = np.random.default_rng(0)
        pts = (rng.normal(2.0, 0.5, 4000)
               + 1j * rng.normal(-1.0, 0.2, 4000))
        g = fit_gaussian_2d(pts)
        assert g.mu_i == pytest.approx(2.0, abs=0.05)
        assert g.mu_q == pytest.approx(-1.0, abs=0.05)
        assert g.sigma_i == pytest.approx(0.5, rel=0.1)
        assert g.sigma_q == pytest.approx(0.2, rel=0.1)

    def test_recovers_correlation(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, 5000)
        y = 0.8 * x + 0.6 * rng.normal(0, 1, 5000)
        g = fit_gaussian_2d(x + 1j * y)
        assert g.rho == pytest.approx(0.8, abs=0.05)

    def test_single_point_floored(self):
        g = fit_gaussian_2d(np.array([1 + 1j]))
        assert g.sigma_i > 0
        assert g.rho == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_gaussian_2d(np.empty(0, dtype=complex))


class TestBerFromBits:
    def test_identical(self):
        assert ber_from_bits([1, 0, 1], [1, 0, 1]) == 0.0

    def test_all_wrong(self):
        assert ber_from_bits([1, 1], [0, 0]) == 1.0

    def test_partial(self):
        assert ber_from_bits([1, 0, 1, 0], [1, 1, 1, 0]) == 0.25

    def test_short_received_counts_missing_as_errors(self):
        assert ber_from_bits([1, 0, 1, 0], [1, 0]) == 0.5

    def test_long_received_extra_ignored(self):
        assert ber_from_bits([1, 0], [1, 0, 1, 1]) == 0.0

    def test_empty_sent_rejected(self):
        with pytest.raises(ValueError):
            ber_from_bits([], [1])


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(80, 100)
        assert low < 0.8 < high

    def test_bounds_clipped(self):
        low, _ = wilson_interval(0, 10)
        _, high = wilson_interval(10, 10)
        assert low == 0.0
        assert high == 1.0

    def test_narrows_with_samples(self):
        low_small, high_small = wilson_interval(8, 10)
        low_big, high_big = wilson_interval(800, 1000)
        assert (high_big - low_big) < (high_small - low_small)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)


class TestDbConversions:
    def test_round_trip(self):
        assert linear_to_db(db_to_linear(7.3)) == pytest.approx(7.3)

    def test_known_values(self):
        assert db_to_linear(3.0) == pytest.approx(2.0, rel=0.01)
        assert linear_to_db(100.0) == pytest.approx(20.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)
