"""Tests for argument-validation helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import (require_in_range, require_int,
                                    require_non_negative,
                                    require_positive)


def test_require_positive():
    assert require_positive("x", 3.5) == 3.5
    with pytest.raises(ConfigurationError):
        require_positive("x", 0.0)
    with pytest.raises(ConfigurationError):
        require_positive("x", -1.0)


def test_require_non_negative():
    assert require_non_negative("x", 0.0) == 0.0
    with pytest.raises(ConfigurationError):
        require_non_negative("x", -0.1)


def test_require_in_range_inclusive():
    assert require_in_range("x", 1.0, 1.0, 2.0) == 1.0
    with pytest.raises(ConfigurationError):
        require_in_range("x", 2.1, 1.0, 2.0)


def test_require_in_range_exclusive():
    with pytest.raises(ConfigurationError):
        require_in_range("x", 1.0, 1.0, 2.0, inclusive=False)
    assert require_in_range("x", 1.5, 1.0, 2.0,
                            inclusive=False) == 1.5


def test_require_int():
    assert require_int("n", 5.0) == 5
    with pytest.raises(ConfigurationError):
        require_int("n", 5.5)
    with pytest.raises(ConfigurationError):
        require_int("n", 2, minimum=3)
    assert require_int("n", 3, minimum=3) == 3


def test_error_message_names_argument():
    with pytest.raises(ConfigurationError, match="epoch"):
        require_positive("epoch", -1)
