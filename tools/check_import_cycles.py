#!/usr/bin/env python
"""Fail on runtime import cycles (and layering breaks) inside repro.

The decode path is deliberately layered::

    stages.stats <- stages.context <- stage modules <- pipeline
                                                    <- session_decoder
    session sits beside the stage modules (they reference its classes
    for typing only) and must not import pipeline at module scope.

This script parses every module under ``src/repro`` with ``ast`` and
builds the *runtime* module-scope import graph:

* ``if TYPE_CHECKING:`` blocks are skipped (typing-only imports are
  exactly the sanctioned way to reference an upper layer);
* imports inside function bodies are skipped (they are lazy by
  construction — e.g. the ``SessionDecoder`` re-export in
  ``session.__getattr__``);
* an import of a submodule counts as a dependency on that submodule,
  not on its ancestor packages (importing your own package's
  ``__init__`` is the normal re-export pattern, handled by Python's
  partial-initialization rules).

Any strongly connected component with more than one module — or a
module importing itself — fails the check, as does any edge on the
explicit forbidden list below.  Run directly or via the pytest wrapper
``tests/tooling/test_import_cycles.py``; CI runs both.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Set, Tuple

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
PACKAGE = "repro"

#: (importer, imported) pairs that must never appear at module scope,
#: even if they do not (yet) close a full cycle.  These pin the decode
#: path's layering.
FORBIDDEN_EDGES: Tuple[Tuple[str, str], ...] = (
    ("repro.core.session", "repro.core.pipeline"),
    ("repro.core.session", "repro.core.session_decoder"),
    ("repro.core.fidelity", "repro.core.pipeline"),
)

#: Module prefixes that must not import these targets at module scope.
FORBIDDEN_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("repro.core.stages.", "repro.core.pipeline"),
    ("repro.core.stages.", "repro.core.session"),
    ("repro.core.stages.", "repro.core.session_decoder"),
    ("repro.core.stages.", "repro.core.engine"),
)

#: The kernel backends are the bottom of the compute stack: plain
#: arrays in, plain arrays out.  Nothing under this prefix may import
#: anything from ``repro`` except its own siblings and the entries in
#: the allowlist — a backend that needs pipeline/stage types is a
#: layering bug, and would also drag JIT compilation into modules that
#: must import cheaply.
KERNELS_PREFIX = "repro.core.kernels"
KERNELS_ALLOWED: Tuple[str, ...] = ("repro.errors",)


def iter_modules() -> Iterator[Tuple[str, Path]]:
    for path in sorted((SRC / PACKAGE).rglob("*.py")):
        rel = path.relative_to(SRC)
        parts = list(rel.with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        yield ".".join(parts), path


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    return (isinstance(test, ast.Attribute)
            and test.attr == "TYPE_CHECKING")


def _module_scope_nodes(body: List[ast.stmt]) -> Iterator[ast.stmt]:
    """Statements executed at import time (recursing into if/try/class
    bodies but not into function bodies or TYPE_CHECKING branches)."""
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.If):
            if _is_type_checking_test(node.test):
                yield from _module_scope_nodes(node.orelse)
                continue
            yield from _module_scope_nodes(node.body)
            yield from _module_scope_nodes(node.orelse)
            continue
        if isinstance(node, ast.Try):
            for block in (node.body, node.orelse, node.finalbody):
                yield from _module_scope_nodes(block)
            for handler in node.handlers:
                yield from _module_scope_nodes(handler.body)
            continue
        if isinstance(node, ast.ClassDef):
            yield from _module_scope_nodes(node.body)
            continue
        yield node


def _resolve_relative(module: str, is_package: bool, level: int,
                      target: str) -> str:
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    if level > 1:
        parts = parts[: len(parts) - (level - 1)]
    return ".".join(parts + ([target] if target else []))


def module_imports(module: str, path: Path,
                   known: Set[str]) -> Set[str]:
    """Runtime module-scope imports of ``module`` within the package."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    is_package = path.name == "__init__.py"
    edges: Set[str] = set()
    for node in _module_scope_nodes(tree.body):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.name
                while name:
                    if name in known:
                        edges.add(name)
                        break
                    name = name.rpartition(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = (node.module or "")
            if node.level:
                base = _resolve_relative(module, is_package,
                                         node.level, base)
            if not base.startswith(PACKAGE):
                continue
            for alias in node.names:
                deep = f"{base}.{alias.name}"
                target = deep if deep in known else base
                while target and target not in known:
                    target = target.rpartition(".")[0]
                if target:
                    edges.add(target)
    edges.discard(module)
    return edges


def build_graph() -> Dict[str, Set[str]]:
    modules = dict(iter_modules())
    known = set(modules)
    return {name: module_imports(name, path, known)
            for name, path in modules.items()}


def find_cycles(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly connected components of size > 1 (Tarjan)."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    cycles: List[List[str]] = []

    def strongconnect(node: str) -> None:
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for dep in sorted(graph.get(node, ())):
            if dep not in index:
                strongconnect(dep)
                low[node] = min(low[node], low[dep])
            elif dep in on_stack:
                low[node] = min(low[node], index[dep])
        if low[node] == index[node]:
            component = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            if len(component) > 1:
                cycles.append(sorted(component))

    sys.setrecursionlimit(10_000)
    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return cycles


def check() -> List[str]:
    graph = build_graph()
    problems = []
    for cycle in find_cycles(graph):
        problems.append("import cycle: " + " <-> ".join(cycle))
    for importer, imported in FORBIDDEN_EDGES:
        if imported in graph.get(importer, ()):
            problems.append(
                f"forbidden import: {importer} -> {imported}")
    for prefix, imported in FORBIDDEN_PREFIXES:
        for importer, edges in graph.items():
            if importer.startswith(prefix) and imported in edges:
                problems.append(
                    f"forbidden import: {importer} -> {imported}")
    for importer, edges in graph.items():
        if not importer.startswith(KERNELS_PREFIX):
            continue
        for imported in sorted(edges):
            if imported.startswith(KERNELS_PREFIX) \
                    or imported in KERNELS_ALLOWED:
                continue
            problems.append(
                f"forbidden import: {importer} -> {imported} "
                f"(kernel backends must stay below the decode layers)")
    return problems


def main() -> int:
    problems = check()
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    n = len(build_graph())
    print(f"import graph clean: {n} modules, no runtime cycles")
    return 0


if __name__ == "__main__":
    sys.exit(main())
